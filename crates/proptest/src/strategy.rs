//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A way to produce random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a value from a deterministic per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

float_strategies!(f32, f64);

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
