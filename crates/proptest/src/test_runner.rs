//! Case execution support used by the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(&'static str),
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

/// Result type of a generated case closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic seed for the `index`-th case of test `name` (FNV-1a over
/// the name, mixed with the index).
pub fn case_seed(name: &str, index: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Fresh generator for one case.
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
