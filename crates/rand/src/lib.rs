//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships its own implementation of the (small) `rand` API
//! surface it actually uses: [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! (`gen_range` / `gen_bool`) and [`seq::SliceRandom`] (`shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! `Clone`-able and `Send`, which is what the deterministic parallel runtime
//! in `cohortnet-parallel` relies on for per-task seed-split streams. Streams
//! are *not* bit-compatible with upstream `rand 0.8`; every consumer in this
//! workspace only relies on determinism for a fixed seed, never on specific
//! upstream values.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Seedable deterministic generators (upstream `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and stream splitting.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core random-value API (upstream `rand::Rng` subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.next_f64() < p
    }
}

/// Ranges that can be sampled uniformly (upstream `SampleRange` subset).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire multiply-shift; bias is < span / 2^64, negligible for
                // every span in this workspace.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = rng.next_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i32..9);
            assert!((-4..9).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.3..0.3f32);
            assert!((-0.3..0.3).contains(&v));
            let w: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        let mut rng = StdRng::seed_from_u64(14);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (800..1200).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
