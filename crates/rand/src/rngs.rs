//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small state, `Clone` + `Send`, excellent statistical quality for the
/// simulation / initialisation / sampling workloads in this repo. Not
/// cryptographically secure (neither use requires it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
