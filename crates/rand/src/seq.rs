//! Sequence helpers (upstream `rand::seq` subset).

use crate::Rng;

/// Slice randomisation (upstream `SliceRandom` subset).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates in-place shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0usize..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
