//! `chaos-smoke` — seeded chaos harness over the full serving stack.
//!
//! One run drives two passes against identical servers (single-threaded
//! engine, sequential requests, so every chaos decision replays):
//!
//! 1. **Reference pass** — no faults; records every `/score` body.
//! 2. **Chaos pass** — installs a seeded [`ChaosPlan`] (worker panic,
//!    injected scoring latency, queue-saturation rejection, snapshot
//!    corruption at load) and additionally mutates client traffic with
//!    the seed-derived [`request_fault`] schedule (truncated bodies,
//!    oversized declarations, malformed JSON, mid-request stalls).
//!
//! Pass criteria, checked with asserts (non-zero exit on violation):
//!
//! * every non-faulted request answers `200` with a body **bit-identical**
//!   to the reference pass;
//! * every faulted request gets its typed degradation answer
//!   (400/408/413) — no hang, no connection left dangling;
//! * the injected snapshot corruption surfaces as a typed load error and
//!   the retry loads clean;
//! * at least five distinct fault kinds were actually injected;
//! * zero unhandled panics (worker panics are absorbed as engine
//!   restarts, visible on `/metrics`), and the whole run finishes inside
//!   a hard wall-clock budget.
//!
//! Usage: `chaos-smoke [seed] [log-path]` (defaults: seed 42,
//! `target/CHAOS_RUN_<seed>.log`). The log file is the CI artifact.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cohortnet::infer::ScoreRequest;
use cohortnet::snapshot::load_snapshot;
use cohortnet_chaos::{install, request_fault, ChaosPlan, RequestFault, When};
use cohortnet_serve::client::{read_response, request, request_with_retry, RetryPolicy};
use cohortnet_serve::http::MAX_BODY_BYTES;
use cohortnet_serve::{demo, serve, EngineConfig, Server, ServerConfig};

/// Requests per pass: a clean warm-up (indices 0..8, so the server-side
/// `At` schedules below are reached for every seed), a seed-varied middle,
/// and one of each client fault kind at the tail.
const N_REQUESTS: u64 = 24;

/// Hard ceiling on the whole run — the "zero hangs" check.
const WALL_BUDGET: Duration = Duration::from_secs(120);

/// Bound on any single raw-socket read, so a server that stops answering
/// fails the run instead of wedging it.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_body(e: &ScoreRequest) -> String {
    format!(
        "{{\"instances\":[{{\"x\":[{}],\"mask\":[{}]}}]}}",
        join(&e.x),
        join(&e.mask)
    )
}

/// The per-request fault schedule — pure in `(seed, index)`.
fn fault_for(seed: u64, i: u64) -> RequestFault {
    match i {
        0..=7 => RequestFault::None,
        20 => RequestFault::TruncateBody,
        21 => RequestFault::OversizeBody,
        22 => RequestFault::MalformedJson,
        23 => RequestFault::StallMidRequest,
        _ => request_fault(seed, i, 0.45),
    }
}

/// A fresh single-threaded server over the shared demo snapshot.
fn start_server(snapshot: &str) -> Server {
    let loaded = load_snapshot(snapshot).expect("snapshot loads");
    serve(
        loaded,
        ServerConfig {
            port: 0,
            read_timeout_ms: 300,
            engine: EngineConfig {
                max_batch: 16,
                max_delay_us: 500,
                threads: 1,
                queue_cap: 64,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// Reads one counter value from a `/metrics` body (the trailing space on
/// `family` keeps `# HELP` / `# TYPE` lines from matching).
fn metric_value(metrics_body: &str, family: &str) -> f64 {
    metrics_body
        .lines()
        .find_map(|line| line.strip_prefix(family)?.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Opens a raw connection with a bounded read timeout.
fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(SOCKET_TIMEOUT))
        .expect("set read timeout");
    stream
}

struct RunLog {
    lines: Vec<String>,
}

impl RunLog {
    fn line(&mut self, text: String) {
        eprintln!("{text}");
        self.lines.push(text);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .get(1)
        .map(|s| s.parse().expect("seed must be a number"))
        .unwrap_or(42);
    let log_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| format!("target/CHAOS_RUN_{seed}.log"));
    // The harness owns the fault schedule; an inherited COHORTNET_CHAOS
    // plan would poison the reference pass.
    std::env::remove_var("COHORTNET_CHAOS");

    let t0 = Instant::now();
    let mut log = RunLog { lines: Vec::new() };
    log.line(format!("chaos-smoke: seed={seed} requests={N_REQUESTS}"));

    eprintln!("chaos-smoke: training demo model...");
    let bundle = demo::demo_bundle();
    let bodies: Vec<String> = (0..N_REQUESTS)
        .map(|i| score_body(&bundle.examples[(i as usize) % bundle.examples.len()]))
        .collect();

    // ---------------------------------------------------- reference pass
    let server = start_server(&bundle.snapshot);
    let reference: Vec<String> = bodies
        .iter()
        .map(|body| {
            let resp = request(server.addr(), "POST", "/score", body).expect("reference request");
            assert_eq!(resp.status, 200, "reference pass: {}", resp.body);
            resp.body
        })
        .collect();
    server.shutdown();
    log.line(format!(
        "reference pass: {} requests, all 200",
        reference.len()
    ));

    // -------------------------------------------------------- chaos pass
    // Server-side faults ride fixed call indices inside the clean warm-up
    // window, so every seed injects all four kinds; the seed only varies
    // the client-side middle of the schedule.
    let plan = ChaosPlan::new(seed)
        .site("snapshot.corrupt", When::At(vec![1]), 191)
        .site("infer.worker", When::At(vec![3]), 0)
        .site("infer.latency", When::At(vec![5]), 15)
        .site("engine.enqueue.reject", When::At(vec![6]), 0);
    let guard = install(plan);
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();

    // Snapshot corruption at load: the first load must fail with a typed
    // error, and the immediate retry (site fired already) must be clean.
    let load_err = load_snapshot(&bundle.snapshot)
        .err()
        .expect("injected snapshot corruption must be rejected");
    log.line(format!(
        "snapshot load rejected (injected corruption): {load_err}"
    ));
    kinds.insert("snapshot.corrupt");
    let server = start_server(&bundle.snapshot);
    let addr = server.addr();

    let retry = RetryPolicy {
        attempts: 4,
        base_ms: 10,
        max_ms: 100,
        seed,
    };
    let mut matched = 0usize;
    for (i, body) in bodies.iter().enumerate() {
        let fault = fault_for(seed, i as u64);
        let status = match fault {
            RequestFault::None => {
                let resp = request_with_retry(addr, "POST", "/score", body, retry)
                    .expect("non-faulted request");
                assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
                assert_eq!(
                    resp.body, reference[i],
                    "request {i} scored differently under chaos"
                );
                matched += 1;
                resp.status
            }
            RequestFault::TruncateBody => {
                // Declare the full length, send half, close the write side:
                // the server sees EOF mid-body and must answer 400.
                let mut c = raw_conn(addr);
                let head = format!(
                    "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                c.write_all(head.as_bytes()).expect("write head");
                c.write_all(&body.as_bytes()[..body.len() / 2])
                    .expect("write half body");
                c.shutdown(Shutdown::Write).expect("close write side");
                let resp = read_response(&mut c).expect("truncation response");
                assert_eq!(resp.status, 400, "request {i}: {}", resp.body);
                kinds.insert("client.truncate");
                resp.status
            }
            RequestFault::OversizeBody => {
                let mut c = raw_conn(addr);
                let head = format!(
                    "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    MAX_BODY_BYTES + 1
                );
                c.write_all(head.as_bytes()).expect("write head");
                let resp = read_response(&mut c).expect("oversize response");
                assert_eq!(resp.status, 413, "request {i}: {}", resp.body);
                kinds.insert("client.oversize");
                resp.status
            }
            RequestFault::MalformedJson => {
                let resp =
                    request(addr, "POST", "/score", "!!not-json{{").expect("malformed request");
                assert_eq!(resp.status, 400, "request {i}: {}", resp.body);
                kinds.insert("client.malformed");
                resp.status
            }
            RequestFault::StallMidRequest => {
                // Half a head, then silence: the configured 300ms read
                // timeout must answer 408 instead of pinning the handler.
                let stall_t0 = Instant::now();
                let mut c = raw_conn(addr);
                c.write_all(b"POST /score HTTP/1.1\r\nContent-Le")
                    .expect("partial write");
                let resp = read_response(&mut c).expect("stall response");
                assert_eq!(resp.status, 408, "request {i}: {}", resp.body);
                assert!(
                    stall_t0.elapsed() < Duration::from_secs(5),
                    "stalled request {i} waited {:?}",
                    stall_t0.elapsed()
                );
                kinds.insert("client.stall");
                resp.status
            }
        };
        log.line(format!("req {i:02} fault={fault:?} status={status}"));
    }

    // ------------------------------------------------- metrics + verdict
    let resp = request(addr, "GET", "/metrics", "").expect("/metrics");
    assert_eq!(resp.status, 200);
    let metrics = resp.body;
    server.shutdown();
    drop(guard);

    for (family, kind) in [
        (
            "cohortnet_chaos_injected_infer_worker_total ",
            "worker.panic",
        ),
        (
            "cohortnet_chaos_injected_infer_latency_total ",
            "scoring.latency",
        ),
        (
            "cohortnet_chaos_injected_engine_enqueue_reject_total ",
            "queue.reject",
        ),
    ] {
        let injected = metric_value(&metrics, family);
        assert!(injected >= 1.0, "{family} not injected: {injected}");
        kinds.insert(kind);
    }
    let restarts = metric_value(&metrics, "cohortnet_engine_restarts_total ");
    assert!(
        restarts >= 1.0,
        "worker panic was not absorbed as a restart"
    );
    let total = metric_value(&metrics, "cohortnet_chaos_injected_total ");
    log.line(format!(
        "metrics: chaos_injected_total={total} engine_restarts={restarts}"
    ));

    let non_faulted = (0..N_REQUESTS)
        .filter(|&i| fault_for(seed, i) == RequestFault::None)
        .count();
    assert_eq!(matched, non_faulted, "a non-faulted request went unmatched");
    assert!(
        kinds.len() >= 5,
        "only {} distinct fault kinds injected: {kinds:?}",
        kinds.len()
    );
    assert!(
        t0.elapsed() < WALL_BUDGET,
        "run exceeded the wall-clock budget: {:?}",
        t0.elapsed()
    );

    log.line(format!(
        "fault kinds injected ({}): {}",
        kinds.len(),
        kinds.iter().copied().collect::<Vec<_>>().join(", ")
    ));
    log.line(format!(
        "bit-identical non-faulted responses: {matched}/{non_faulted}"
    ));
    log.line(format!("elapsed: {:.2}s", t0.elapsed().as_secs_f64()));
    log.line(format!("chaos-smoke: ok (seed {seed})"));

    if let Some(dir) = std::path::Path::new(&log_path).parent() {
        std::fs::create_dir_all(dir).expect("create log dir");
    }
    std::fs::write(&log_path, log.lines.join("\n") + "\n").expect("write run log");
    println!("chaos-smoke: ok (seed {seed}, log at {log_path})");
}
