//! `cohortnet-serve` — serve a trained CohortNet snapshot over HTTP.
//!
//! ```text
//! cohortnet-serve --snapshot model.cns --port 8080
//! cohortnet-serve --demo                       # train a tiny demo model first
//! cohortnet-serve --demo-snapshot model.cns    # write a demo snapshot and exit
//! ```

use cohortnet::snapshot::load_snapshot;
use cohortnet_obs::obs_info;
use cohortnet_serve::{demo, serve, serve_stream, EngineConfig, ServerConfig, StreamOptions};

/// Log target for server-lifecycle events.
const LOG: &str = "cohortnet.serve.bin";

struct Args {
    snapshot: Option<String>,
    demo: bool,
    demo_snapshot: Option<String>,
    server: ServerConfig,
    stream: bool,
    stream_opts: StreamOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: cohortnet-serve (--snapshot PATH | --demo | --demo-snapshot PATH)\n\
         \x20        [--port N (default 8080)] [--max-batch N (default 16)]\n\
         \x20        [--max-delay-us N (default 2000)] [--threads N (default 0 = all cores)]\n\
         \x20        [--deadline-ms N (default 0 = no queue deadline)]\n\
         \x20        [--read-timeout-ms N (default 0 = built-in 10s)]\n\
         \x20        [--idle-timeout-ms N (default 0 = built-in 30s keep-alive idle close)]\n\
         \x20        [--max-connections N (default 256, 0 = unlimited)]\n\
         \x20        [--workers N (default 0 = built-in 16 request workers)]\n\
         \x20        [--quant (serve the int8 quantized trunk; default f32)]\n\
         \x20        [--stream (enable POST /ingest event-stream sessions)]\n\
         \x20        [--horizon-hours N (default 48, stream window span)]\n\
         \x20        [--session-idle-ms N (default 0 = built-in 300s idle eviction)]\n\
         \x20        [--max-sessions N (default 0 = built-in 1024 LRU cap)]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        snapshot: None,
        demo: false,
        demo_snapshot: None,
        server: ServerConfig {
            port: 8080,
            engine: EngineConfig::default(),
            ..ServerConfig::default()
        },
        stream: false,
        stream_opts: StreamOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--snapshot" => args.snapshot = Some(value("--snapshot")),
            "--demo" => args.demo = true,
            "--demo-snapshot" => args.demo_snapshot = Some(value("--demo-snapshot")),
            "--port" => args.server.port = parse_num(&value("--port"), "--port"),
            "--max-batch" => {
                args.server.engine.max_batch = parse_num(&value("--max-batch"), "--max-batch")
            }
            "--max-delay-us" => {
                args.server.engine.max_delay_us =
                    parse_num(&value("--max-delay-us"), "--max-delay-us")
            }
            "--threads" => args.server.engine.threads = parse_num(&value("--threads"), "--threads"),
            "--deadline-ms" => {
                args.server.engine.deadline_ms = parse_num(&value("--deadline-ms"), "--deadline-ms")
            }
            "--read-timeout-ms" => {
                args.server.read_timeout_ms =
                    parse_num(&value("--read-timeout-ms"), "--read-timeout-ms")
            }
            "--idle-timeout-ms" => {
                args.server.idle_timeout_ms =
                    parse_num(&value("--idle-timeout-ms"), "--idle-timeout-ms")
            }
            "--max-connections" => {
                args.server.max_connections =
                    parse_num(&value("--max-connections"), "--max-connections")
            }
            "--workers" => args.server.workers = parse_num(&value("--workers"), "--workers"),
            "--quant" => args.server.quant = true,
            "--stream" => args.stream = true,
            "--horizon-hours" => {
                args.stream_opts.horizon_hours =
                    parse_num(&value("--horizon-hours"), "--horizon-hours")
            }
            "--session-idle-ms" => {
                args.stream_opts.session_idle_ms =
                    parse_num(&value("--session-idle-ms"), "--session-idle-ms")
            }
            "--max-sessions" => {
                args.stream_opts.max_sessions =
                    parse_num(&value("--max-sessions"), "--max-sessions")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(text: &str, name: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{name}: not a number: {text}");
        usage()
    })
}

fn main() {
    cohortnet_obs::init_from_env();
    let args = parse_args();

    if let Some(path) = &args.demo_snapshot {
        obs_info!(target: LOG, "training demo model");
        let bundle = demo::demo_bundle();
        std::fs::write(path, &bundle.snapshot).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        });
        obs_info!(target: LOG, "wrote demo snapshot", path = path);
        return;
    }

    let text = if args.demo {
        obs_info!(target: LOG, "training demo model");
        demo::demo_bundle().snapshot
    } else if let Some(path) = &args.snapshot {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1)
        })
    } else {
        usage()
    };

    let loaded = load_snapshot(&text).unwrap_or_else(|e| {
        eprintln!("snapshot rejected: {e}");
        std::process::exit(1)
    });
    obs_info!(
        target: LOG,
        "loaded snapshot",
        features = loaded.model.cfg.n_features(),
        time_steps = loaded.time_steps,
        labels = loaded.model.cfg.n_labels,
        cohorts = loaded.model.discovery.is_some(),
    );

    let server = if args.stream {
        serve_stream(loaded, args.server, args.stream_opts)
    } else {
        serve(loaded, args.server)
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot bind port {}: {e}", args.server.port);
        std::process::exit(1)
    });
    // Unconditional, parse-friendly startup line (the obs log may be
    // disabled); tests and scripts read the bound address from here.
    eprintln!("listening on http://{}", server.addr());
    obs_info!(target: LOG, "serving", url = format!("http://{}", server.addr()));
    server.join();
    cohortnet_obs::trace::flush();
    obs_info!(target: LOG, "shut down");
}
