//! `serve-smoke` — end-to-end smoke test: train a tiny model, write a
//! snapshot, load it back, start the server, exercise every endpoint over
//! real sockets (asserting the batching determinism contract), then shut
//! down gracefully. Exits non-zero on any failure.

use std::net::SocketAddr;

use cohortnet::snapshot::load_snapshot;
use cohortnet_serve::client::{request_with_retry, RetryPolicy};
use cohortnet_serve::{demo, serve, EngineConfig, ServerConfig};

/// Fires one HTTP request through the retrying client (capped backoff on
/// transient 408/429/503) and returns `(status, response head, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let resp = request_with_retry(addr, method, path, body, RetryPolicy::default())
        .unwrap_or_else(|e| panic!("{method} {path}: {e}"));
    (resp.status, resp.head, resp.body)
}

/// Extracts a response header value (case-insensitive name) from a raw head.
fn header<'h>(head: &'h str, name: &str) -> Option<&'h str> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.trim().eq_ignore_ascii_case(name).then_some(v.trim())
    })
}

fn score_body(examples: &[cohortnet::infer::ScoreRequest]) -> String {
    let instances: Vec<String> = examples
        .iter()
        .map(|e| format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)))
        .collect();
    format!("{{\"instances\":[{}]}}", instances.join(","))
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Extracts the rendered prediction objects from a `/score` response body.
fn predictions(body: &str) -> Vec<String> {
    let inner = body
        .strip_prefix("{\"predictions\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .unwrap_or_else(|| panic!("unexpected /score body: {body}"));
    // Predictions are flat objects (no nested braces), so splitting on
    // "},{" is safe.
    inner
        .split("},{")
        .map(|s| {
            let s = s.strip_prefix('{').unwrap_or(s);
            let s = s.strip_suffix('}').unwrap_or(s);
            s.to_string()
        })
        .collect()
}

fn main() {
    let snapshot_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/serve-smoke.cns".to_string());
    // Mirror log lines into memory so we can assert the served request id
    // shows up in the structured log.
    let log_capture = cohortnet_obs::log::capture_start();

    eprintln!("serve-smoke: training demo model...");
    let bundle = demo::demo_bundle();
    std::fs::write(&snapshot_path, &bundle.snapshot).expect("write snapshot");
    let text = std::fs::read_to_string(&snapshot_path).expect("read snapshot back");
    assert_eq!(text, bundle.snapshot, "snapshot drifted through the disk");
    let loaded = load_snapshot(&text).expect("snapshot loads");
    assert!(
        loaded.model.discovery.is_some(),
        "demo model has no cohorts"
    );

    let server = serve(
        loaded,
        ServerConfig {
            port: 0,
            engine: EngineConfig {
                max_batch: 8,
                max_delay_us: 1_000,
                threads: 0,
                queue_cap: 64,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    eprintln!("serve-smoke: serving on {addr}");

    // /healthz
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {body}");
    assert!(body.contains("\"status\":\"ok\""), "healthz body: {body}");
    assert!(
        body.contains("\"has_cohorts\":true"),
        "healthz body: {body}"
    );

    // /score: one instance alone, then all eight in one request — the
    // determinism contract says each row renders identically either way.
    let solo: Vec<String> = bundle
        .examples
        .iter()
        .map(|e| {
            let (status, _, body) =
                request(addr, "POST", "/score", &score_body(std::slice::from_ref(e)));
            assert_eq!(status, 200, "solo score: {body}");
            predictions(&body).remove(0)
        })
        .collect();
    let (status, head, body) = request(addr, "POST", "/score", &score_body(&bundle.examples));
    assert_eq!(status, 200, "batch score: {body}");
    // Every response carries a request id, and the same id appears in the
    // structured request log.
    let rid = header(&head, "X-Request-Id")
        .unwrap_or_else(|| panic!("no X-Request-Id header in: {head}"))
        .to_string();
    assert!(!rid.is_empty(), "empty X-Request-Id");
    let logged = log_capture.contents();
    assert!(
        logged.contains(&rid),
        "request id {rid} not found in captured log:\n{logged}"
    );
    let batched = predictions(&body);
    assert_eq!(batched.len(), bundle.examples.len());
    for (i, (s, b)) in solo.iter().zip(&batched).enumerate() {
        assert_eq!(s, b, "instance {i} scored differently alone vs batched");
    }

    // /score input validation.
    let (status, _, body) = request(
        addr,
        "POST",
        "/score",
        "{\"instances\":[{\"x\":[1],\"mask\":[1]}]}",
    );
    assert_eq!(status, 400, "short instance must be rejected: {body}");
    let (status, _, _) = request(addr, "POST", "/score", "not json");
    assert_eq!(status, 400);

    // /explain
    let e = &bundle.examples[0];
    let explain_body = format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask));
    let (status, _, body) = request(addr, "POST", "/explain", &explain_body);
    assert_eq!(status, 200, "explain: {body}");
    assert!(body.contains("\"base_prob\""), "explain body: {body}");
    assert!(body.contains("\"cohorts\""), "explain body: {body}");

    // /cohorts
    let (status, _, body) = request(addr, "GET", "/cohorts", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"has_cohorts\":true"),
        "cohorts body: {body}"
    );

    // 404 and 405 paths.
    let (status, _, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "GET", "/score", "");
    assert_eq!(status, 405);

    // /metrics: the unified registry exposes request counters plus the
    // stage histograms (queue wait vs batch compute).
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "cohortnet_requests_total",
        "cohortnet_batch_size_bucket",
        "cohortnet_queue_wait_us_bucket",
        "cohortnet_batch_compute_us_bucket",
        "cohortnet_queue_depth",
    ] {
        assert!(
            body.contains(family),
            "{family} missing from /metrics: {body}"
        );
    }

    // Graceful shutdown.
    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
    drop(log_capture);
    println!("serve-smoke: ok");
}
