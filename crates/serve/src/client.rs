//! A minimal blocking HTTP/1.1 client for the server's endpoints, plus a
//! seeded retrying wrapper.
//!
//! The smoke binary, the throughput bench, the chaos harness and the
//! integration tests all need the same three things: fire one request over
//! a real socket, read the whole response, and — when the server answers
//! with backpressure (`429`/`503`) or the connection drops — retry with
//! capped exponential backoff. The jittered backoff schedule comes from
//! [`cohortnet_chaos::backoff_ms`], so a retry trace is reproducible from
//! its seed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully read HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Raw response head (status line + headers).
    pub head: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Looks up a response header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.trim().eq_ignore_ascii_case(name).then_some(v.trim())
        })
    }
}

/// Fires one request and reads the full response (the server speaks
/// `Connection: close`, so EOF delimits the body).
///
/// # Errors
/// Propagates socket failures; a response without a parsable status line is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    read_response(&mut stream)
}

/// Reads and splits one full response from an already written stream.
///
/// # Errors
/// Propagates socket failures; a response without a parsable status line is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("no status line in response: {raw:?}"),
            )
        })?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((raw.clone(), String::new()));
    Ok(Response { status, head, body })
}

/// Retry schedule for [`request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Base backoff before the second attempt, milliseconds.
    pub base_ms: u64,
    /// Backoff cap, milliseconds.
    pub max_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 25,
            max_ms: 1_000,
            seed: 0x5eed,
        }
    }
}

/// Whether a status is worth retrying: the server's backpressure answers.
pub fn is_retryable_status(status: u16) -> bool {
    matches!(status, 408 | 429 | 503)
}

/// Fires a request, retrying on connection errors and retryable statuses
/// (`408`/`429`/`503`) with capped exponential backoff + deterministic
/// jitter. Returns the last response (even if still retryable) once the
/// attempt budget runs out.
///
/// # Errors
/// The last connection error, when every attempt failed at the socket level.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    policy: RetryPolicy,
) -> std::io::Result<Response> {
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let ms = cohortnet_chaos::backoff_ms(
                policy.seed,
                attempt - 1,
                policy.base_ms,
                policy.max_ms,
            );
            std::thread::sleep(Duration::from_millis(ms));
        }
        match request(addr, method, path, body) {
            Ok(resp) if is_retryable_status(resp.status) && attempt + 1 < attempts => {
                last_err = None;
                continue;
            }
            Ok(resp) => return Ok(resp),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| std::io::Error::other("retry budget exhausted with a retryable status")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot server thread answering each accepted connection with a
    /// fixed raw response.
    fn canned_server(responses: Vec<&'static str>) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            for raw in responses {
                let (mut conn, _) = listener.accept().expect("accept");
                // Drain the request head so the client's write succeeds.
                let mut buf = [0u8; 4096];
                let _ = conn.read(&mut buf);
                conn.write_all(raw.as_bytes()).expect("write response");
            }
        });
        (addr, handle)
    }

    #[test]
    fn parses_status_head_and_body() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Request-Id: r-1\r\n\r\nhello",
        ]);
        let resp = request(addr, "GET", "/healthz", "").expect("request");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello");
        assert_eq!(resp.header("x-request-id"), Some("r-1"));
    }

    #[test]
    fn retries_past_backpressure_to_success() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n",
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n",
            "HTTP/1.1 200 OK\r\n\r\nok",
        ]);
        let policy = RetryPolicy {
            attempts: 4,
            base_ms: 1,
            max_ms: 4,
            seed: 7,
        };
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("eventually succeeds");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
    }

    #[test]
    fn returns_last_retryable_response_when_budget_runs_out() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\n\r\n",
            "HTTP/1.1 503 Service Unavailable\r\n\r\n",
        ]);
        let policy = RetryPolicy {
            attempts: 2,
            base_ms: 1,
            max_ms: 2,
            seed: 7,
        };
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("last response");
        server.join().expect("server thread");
        assert_eq!(resp.status, 503);
    }
}
