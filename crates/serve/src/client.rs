//! A minimal blocking HTTP/1.1 client for the server's endpoints, plus a
//! seeded retrying wrapper.
//!
//! The smoke binary, the throughput bench, the chaos harness and the
//! integration tests all need the same three things: fire one request over
//! a real socket, read the whole response, and — when the server answers
//! with backpressure (`429`/`503`) or the connection drops — retry after a
//! wait. A `Retry-After: <seconds>` header on the retryable response is
//! honored (capped at the policy's `max_ms`); otherwise the jittered
//! exponential backoff schedule from [`cohortnet_chaos::backoff_ms`]
//! applies, so a retry trace is reproducible from its seed.
//!
//! Two framings coexist here. [`request`]/[`read_response`] speak
//! `Connection: close` and read to EOF — one request per socket.
//! [`Connection`] holds a keep-alive socket open across requests, framing
//! each response by its `Content-Length` via the incremental
//! [`try_parse_response`] (which the open-loop load harness also drives
//! directly over nonblocking sockets).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully read HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Raw response head (status line + headers).
    pub head: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Looks up a response header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.trim().eq_ignore_ascii_case(name).then_some(v.trim())
        })
    }
}

/// Fires one request and reads the full response (the server speaks
/// `Connection: close`, so EOF delimits the body).
///
/// # Errors
/// Propagates socket failures; a response without a parsable status line is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    read_response(&mut stream)
}

/// Reads and splits one full response from an already written stream.
///
/// # Errors
/// Propagates socket failures; a response without a parsable status line is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("no status line in response: {raw:?}"),
            )
        })?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((raw.clone(), String::new()));
    Ok(Response { status, head, body })
}

/// Attempts to parse one complete `Content-Length`-framed response from
/// the start of `buf`, returning it plus the bytes it consumed (bytes past
/// that belong to the next pipelined response). `Ok(None)` means the
/// buffer holds only a prefix — read more and retry.
///
/// # Errors
/// [`std::io::ErrorKind::InvalidData`] for a head that is not UTF-8, has
/// no parsable status line, or lacks `Content-Length` (an EOF-framed
/// response cannot be keep-alive framed).
pub fn try_parse_response(buf: &[u8]) -> std::io::Result<Option<(Response, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let invalid = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| invalid("non-utf8 response head".into()))?
        .to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("no status line in response: {head:?}")))?;
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .ok_or_else(|| invalid(format!("response lacks content-length: {head:?}")))?;
    let consumed = head_end + 4 + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..consumed]).into_owned();
    Ok(Some((Response { status, head, body }, consumed)))
}

/// A blocking keep-alive connection: many requests over one socket, each
/// response framed by `Content-Length`.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Connection {
    /// Opens a keep-alive connection to the server.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(Connection {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// Writes one request without reading the reply (no `Connection:`
    /// header — HTTP/1.1 defaults to keep-alive).
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Reads the next framed response, leaving any pipelined surplus
    /// buffered for the following call.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::UnexpectedEof`] when the server closes before
    /// a full response; [`std::io::ErrorKind::InvalidData`] on an
    /// unparsable response.
    pub fn read_reply(&mut self) -> std::io::Result<Response> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((resp, consumed)) = try_parse_response(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(resp);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// One request-response round trip on the held connection.
    ///
    /// # Errors
    /// Propagates [`Connection::send`] / [`Connection::read_reply`]
    /// failures.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        self.send(method, path, body)?;
        self.read_reply()
    }

    /// The underlying socket, for tests that poke at timeouts or
    /// half-closes.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Retry schedule for [`request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Base backoff before the second attempt, milliseconds.
    pub base_ms: u64,
    /// Backoff cap, milliseconds.
    pub max_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 25,
            max_ms: 1_000,
            seed: 0x5eed,
        }
    }
}

/// Whether a status is worth retrying: the server's backpressure answers.
pub fn is_retryable_status(status: u16) -> bool {
    matches!(status, 408 | 429 | 503)
}

/// The server-advised wait from a `Retry-After` header, in milliseconds,
/// capped at `max_ms`. Only the delta-seconds form is understood (the
/// HTTP-date form is ignored — the seeded backoff then applies).
fn retry_after_ms(resp: &Response, max_ms: u64) -> Option<u64> {
    let secs: u64 = resp.header("retry-after")?.parse().ok()?;
    Some(secs.saturating_mul(1_000).min(max_ms.max(1)))
}

/// Fires a request, retrying on connection errors and retryable statuses
/// (`408`/`429`/`503`). When the retryable response carries a
/// `Retry-After: <seconds>` header the server's advice wins (capped at
/// `max_ms`); otherwise the sleep falls back to capped exponential
/// backoff with deterministic jitter from the policy seed. Returns the
/// last response (even if still retryable) once the attempt budget runs
/// out.
///
/// # Errors
/// The last connection error, when every attempt failed at the socket level.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    policy: RetryPolicy,
) -> std::io::Result<Response> {
    let attempts = policy.attempts.max(1);
    let mut last_err: Option<std::io::Error> = None;
    let mut advised_ms: Option<u64> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let ms = advised_ms.take().unwrap_or_else(|| {
                cohortnet_chaos::backoff_ms(policy.seed, attempt - 1, policy.base_ms, policy.max_ms)
            });
            std::thread::sleep(Duration::from_millis(ms));
        }
        match request(addr, method, path, body) {
            Ok(resp) if is_retryable_status(resp.status) && attempt + 1 < attempts => {
                advised_ms = retry_after_ms(&resp, policy.max_ms);
                last_err = None;
                continue;
            }
            Ok(resp) => return Ok(resp),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| std::io::Error::other("retry budget exhausted with a retryable status")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot server thread answering each accepted connection with a
    /// fixed raw response.
    fn canned_server(responses: Vec<&'static str>) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            for raw in responses {
                let (mut conn, _) = listener.accept().expect("accept");
                // Drain the request head so the client's write succeeds.
                let mut buf = [0u8; 4096];
                let _ = conn.read(&mut buf);
                conn.write_all(raw.as_bytes()).expect("write response");
            }
        });
        (addr, handle)
    }

    #[test]
    fn parses_status_head_and_body() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Request-Id: r-1\r\n\r\nhello",
        ]);
        let resp = request(addr, "GET", "/healthz", "").expect("request");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "hello");
        assert_eq!(resp.header("x-request-id"), Some("r-1"));
    }

    #[test]
    fn incremental_response_parser_frames_by_content_length() {
        let first = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";
        let second = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let mut raw = first.to_vec();
        raw.extend_from_slice(second);
        for cut in 0..first.len() {
            let partial = try_parse_response(&raw[..cut]).expect("prefix parses");
            assert!(partial.is_none(), "complete at premature cut {cut}");
        }
        let (resp, consumed) = try_parse_response(&raw)
            .expect("parses")
            .expect("complete response");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
        assert_eq!(consumed, first.len(), "must stop at the frame boundary");
        let (resp, consumed) = try_parse_response(&raw[first.len()..])
            .expect("parses")
            .expect("second response");
        assert_eq!(resp.status, 404);
        assert_eq!(consumed, second.len());
    }

    #[test]
    fn retries_past_backpressure_to_success() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n",
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n",
            "HTTP/1.1 200 OK\r\n\r\nok",
        ]);
        let policy = RetryPolicy {
            attempts: 4,
            base_ms: 1,
            max_ms: 4,
            seed: 7,
        };
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("eventually succeeds");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
    }

    #[test]
    fn honors_retry_after_header_over_seeded_backoff() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\n\r\n",
            "HTTP/1.1 200 OK\r\n\r\nok",
        ]);
        // The seeded backoff would sleep >= base_ms/2 = 30s; honoring the
        // server's Retry-After: 0 is the only way this finishes promptly.
        let policy = RetryPolicy {
            attempts: 2,
            base_ms: 60_000,
            max_ms: 60_000,
            seed: 7,
        };
        let t0 = std::time::Instant::now();
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("succeeds");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "Retry-After: 0 must preempt the {}ms seeded backoff (took {:?})",
            policy.base_ms,
            t0.elapsed()
        );
    }

    #[test]
    fn falls_back_to_seeded_backoff_without_retry_after() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\n\r\n",
            "HTTP/1.1 200 OK\r\n\r\nok",
        ]);
        let policy = RetryPolicy {
            attempts: 2,
            base_ms: 200,
            max_ms: 200,
            seed: 7,
        };
        let t0 = std::time::Instant::now();
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("succeeds");
        server.join().expect("server thread");
        assert_eq!(resp.status, 200);
        // backoff_ms jitter is in [0.5, 1.0] x base, so the fallback sleep
        // is at least base_ms/2.
        assert!(
            t0.elapsed() >= Duration::from_millis(100),
            "no Retry-After -> seeded backoff must apply (took {:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn returns_last_retryable_response_when_budget_runs_out() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\n\r\n",
            "HTTP/1.1 503 Service Unavailable\r\n\r\n",
        ]);
        let policy = RetryPolicy {
            attempts: 2,
            base_ms: 1,
            max_ms: 2,
            seed: 7,
        };
        let resp = request_with_retry(addr, "GET", "/", "", policy).expect("last response");
        server.join().expect("server thread");
        assert_eq!(resp.status, 503);
    }
}
