//! A tiny end-to-end training run on synthetic data producing a real
//! snapshot. Shared by the CLI's `--demo` mode, the `serve-smoke` binary,
//! and the integration tests, so they all exercise the same artifact the
//! production path would load.

use cohortnet::config::CohortNetConfig;
use cohortnet::infer::ScoreRequest;
use cohortnet::snapshot::save_snapshot;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;

/// A demo model plus ready-made requests drawn from its training data.
pub struct DemoBundle {
    /// The snapshot text (write it to disk or feed it to `load_snapshot`).
    pub snapshot: String,
    /// Standardized scoring requests for the first few training patients.
    pub examples: Vec<ScoreRequest>,
}

/// Trains a tiny CohortNet (discovery included) on synthetic vitals and
/// snapshots it. Deterministic; takes a few seconds in release builds.
pub fn demo_bundle() -> DemoBundle {
    let mut c = profiles::mimic3_like(0.05);
    c.n_patients = 50;
    c.time_steps = 4;
    let mut ds = generate(&c);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.k_states = 4;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 1000;
    cfg.epochs_pretrain = 2;
    cfg.epochs_exploit = 1;
    cfg.batch_size = 16;
    let prep = prepare(&ds);
    let trained = train_cohortnet(&prep, &cfg);
    let snapshot = save_snapshot(&trained.model, &trained.params, &scaler, prep.time_steps);
    let examples = prep
        .patients
        .iter()
        .take(8)
        .map(|p| ScoreRequest {
            x: p.x.clone(),
            mask: p.mask.clone(),
        })
        .collect();
    DemoBundle { snapshot, examples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohortnet::snapshot::load_snapshot;

    #[test]
    fn demo_snapshot_loads_and_scores() {
        let bundle = demo_bundle();
        let loaded = load_snapshot(&bundle.snapshot).expect("demo snapshot loads");
        let inf = loaded.inferencer();
        let out = inf.score_requests(&bundle.examples);
        assert_eq!(out.probs.rows(), bundle.examples.len());
        for &p in out.probs.as_slice() {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
    }
}
