//! The micro-batching request engine.
//!
//! Requests enter a bounded queue; a single batcher thread coalesces them
//! into minibatches of up to `max_batch` requests, waiting at most
//! `max_delay_us` after the oldest queued request before scoring whatever
//! has accumulated. Batches are scored through
//! [`Inferencer::score_requests_parallel`], whose GEMM contract makes every
//! output row a function of its own input only — so a request's result is
//! bit-identical whether it is scored alone or coalesced into any batch,
//! at any worker count.
//!
//! ## Degradation contract
//!
//! The engine must degrade, never hang:
//!
//! * **Deadlines** — a request that has already waited longer than
//!   `deadline_ms` in the queue is answered with
//!   [`EngineError::DeadlineExceeded`] instead of being scored, so
//!   backpressure turns into fast 429s rather than ever-growing latency.
//! * **Panic isolation** — a panic while scoring a batch (e.g. an injected
//!   `infer.worker` chaos fault in a worker thread) is caught; the engine
//!   restarts scoring in degraded mode, re-scoring each request of the
//!   poisoned batch individually. Row independence makes the rescued rows
//!   bit-identical to an unpoisoned run; only a request whose own rescue
//!   panics again gets [`EngineError::Internal`]. Every capture increments
//!   the `engine_restarts` counter.
//! * **Batcher self-heal** — if the batcher loop itself panics outside
//!   batch scoring, the thread restarts it (bounded by
//!   [`MAX_BATCHER_RESTARTS`]); when the bound is exhausted the queue is
//!   drained with errors so callers unblock instead of waiting forever.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cohortnet::infer::{Inferencer, ScoreRequest};
use cohortnet::quant::Scorer;
use cohortnet_obs::ctx::TraceCtx;
use cohortnet_obs::{obs_error, obs_warn, stage};

use crate::metrics::Metrics;

/// Log target for engine degradation events.
const LOG: &str = "cohortnet.serve.engine";

/// How many times the batcher loop restarts after an escaped panic before
/// giving up and draining the queue with errors.
pub const MAX_BATCHER_RESTARTS: u64 = 100;

/// Batching knobs for the request engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum requests coalesced into one scored minibatch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits for company before the
    /// batch is scored anyway, in microseconds.
    pub max_delay_us: u64,
    /// Worker threads used to score a minibatch (0 = all available cores).
    pub threads: usize,
    /// Queue capacity; requests beyond it are rejected with
    /// [`EngineError::Overloaded`].
    pub queue_cap: usize,
    /// Per-request queue deadline in milliseconds (0 = none): a request
    /// still queued after this long is answered with
    /// [`EngineError::DeadlineExceeded`] instead of being scored.
    pub deadline_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            max_delay_us: 2_000,
            threads: 0,
            queue_cap: 1024,
            deadline_ms: 0,
        }
    }
}

/// The score of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RowScore {
    /// Calibrated per-label probability (Eq. 14).
    pub prob: Vec<f32>,
    /// Combined logit (individual + cohort paths).
    pub logit: Vec<f32>,
    /// Logit of the individual (MFLM) path alone.
    pub base_logit: Vec<f32>,
    /// Logit contribution of the cohort (CEM) path, when the model has
    /// discovery artefacts.
    pub cem_logit: Option<Vec<f32>>,
}

/// Why a request was not scored.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request payload has the wrong shape.
    BadRequest(String),
    /// The queue is full; retry later.
    Overloaded,
    /// The request sat in the queue past its deadline; retry later.
    DeadlineExceeded,
    /// Scoring this request panicked even in isolation.
    Internal(String),
    /// The engine is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadRequest(why) => write!(f, "bad request: {why}"),
            EngineError::Overloaded => write!(f, "queue full, retry later"),
            EngineError::DeadlineExceeded => {
                write!(f, "request deadline exceeded in queue, retry later")
            }
            EngineError::Internal(why) => write!(f, "internal scoring failure: {why}"),
            EngineError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for EngineError {}

type Reply = Result<RowScore, EngineError>;

/// What the batcher sends back per request: the reply plus the stage
/// numbers measured on the batcher thread. The *caller's* thread stamps
/// them into its own stage scratch ([`stage::note_engine`]), so
/// attribution never needs a lock on the batcher side.
struct Delivery {
    reply: Reply,
    /// Enqueue → batch compute started, µs.
    queued_us: u32,
    /// Forward-pass duration of the batch this request scored in, µs.
    compute_us: u32,
    /// Size of that batch (0 when the request never joined one).
    batch_size: u32,
}

struct Pending {
    req: ScoreRequest,
    tx: mpsc::Sender<Delivery>,
    enqueued: Instant,
    /// Trace context of the enqueuing request, so the batcher's span can
    /// link back across the thread boundary.
    ctx: Option<TraceCtx>,
}

/// Duration as µs, saturating into a `u32` (~71 minutes).
fn us32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

struct Shared {
    scorer: Arc<Scorer>,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cfg: EngineConfig,
    metrics: Arc<Metrics>,
}

/// The micro-batching scoring engine. Cheap to share behind an [`Arc`];
/// every handler thread calls [`Engine::score`] and blocks until the
/// batcher replies.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the engine (spawns the batcher thread) over a compiled
    /// inferencer (f32 path).
    pub fn start(inf: Inferencer, cfg: EngineConfig, metrics: Arc<Metrics>) -> Self {
        Engine::start_scorer(Scorer::F32(inf), cfg, metrics)
    }

    /// Starts the engine over either precision path — [`Scorer::F32`] or
    /// the int8 [`Scorer::Quant`] (the `--quant` serving mode).
    pub fn start_scorer(scorer: Scorer, cfg: EngineConfig, metrics: Arc<Metrics>) -> Self {
        Engine::start_shared(Arc::new(scorer), cfg, metrics)
    }

    /// Starts the engine over an already shared scorer. The fleet router
    /// runs N replica engines around one compiled [`Scorer`] (and builds a
    /// fresh engine around the same `Arc` during a hot-swap flip), so the
    /// compiled weights are never duplicated per replica.
    pub fn start_shared(scorer: Arc<Scorer>, cfg: EngineConfig, metrics: Arc<Metrics>) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_cap >= 1, "queue_cap must be at least 1");
        let shared = Arc::new(Shared {
            scorer,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
            metrics,
        });
        let worker = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("cohortnet-batcher".into())
            .spawn(move || batcher_thread(&worker))
            .expect("spawn batcher thread");
        Engine {
            shared,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// The compiled inferencer the engine scores with (the quantized-trunk
    /// one in `--quant` mode).
    pub fn inferencer(&self) -> &Inferencer {
        self.shared.scorer.inferencer()
    }

    /// Whether the engine scores through the int8 quantized trunk.
    pub fn quantized(&self) -> bool {
        self.shared.scorer.quantized()
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The batching configuration the engine runs with.
    pub fn config(&self) -> EngineConfig {
        self.shared.cfg
    }

    fn shape_error(&self, req: &ScoreRequest) -> Option<EngineError> {
        let s = &self.shared;
        let inf = s.scorer.inferencer();
        let want_x = inf.time_steps() * inf.n_features();
        if req.x.len() != want_x {
            return Some(EngineError::BadRequest(format!(
                "x has {} values, expected time_steps * n_features = {} * {} = {}",
                req.x.len(),
                inf.time_steps(),
                inf.n_features(),
                want_x
            )));
        }
        if req.mask.len() != inf.n_features() {
            return Some(EngineError::BadRequest(format!(
                "mask has {} values, expected n_features = {}",
                req.mask.len(),
                inf.n_features()
            )));
        }
        None
    }

    /// Scores one request, blocking until the batcher replies. The result
    /// is bit-identical no matter which batch the request lands in.
    ///
    /// # Errors
    /// [`EngineError::BadRequest`] on shape mismatch, `Overloaded` when the
    /// queue is full, `DeadlineExceeded` when the request aged out in the
    /// queue, `Internal` when scoring it panicked even in isolation,
    /// `ShuttingDown` once shutdown has begun.
    pub fn score(&self, req: ScoreRequest) -> Result<RowScore, EngineError> {
        let mut rows = self.score_many(vec![req])?;
        rows.pop().unwrap_or(Err(EngineError::ShuttingDown))
    }

    /// Scores several requests, enqueueing them all before waiting so they
    /// can coalesce into the same minibatch. Results come back in input
    /// order, **one per request**: a request that fails (bad shape,
    /// deadline, isolated panic) carries its own error while the rest of
    /// the batch still scores — and scores bit-identically to a run where
    /// the failing request was never sent.
    ///
    /// # Errors
    /// Whole-call failures only: `Overloaded` when the queue cannot take
    /// the batch, `ShuttingDown` once shutdown has begun.
    pub fn score_many(&self, reqs: Vec<ScoreRequest>) -> Result<Vec<Reply>, EngineError> {
        let s = &self.shared;
        if s.shutdown.load(Ordering::SeqCst) {
            s.metrics.responses_err.inc();
            return Err(EngineError::ShuttingDown);
        }
        // Chaos site `engine.enqueue.reject`: simulates queue saturation so
        // the 503/Retry-After path can be driven without real overload.
        if cohortnet_chaos::fires("engine.enqueue.reject") {
            s.metrics.responses_err.inc();
            return Err(EngineError::Overloaded);
        }
        // Per-request shape validation: a malformed instance fails alone
        // instead of aborting its neighbours.
        let checked: Vec<Result<ScoreRequest, EngineError>> = reqs
            .into_iter()
            .map(|req| match self.shape_error(&req) {
                None => Ok(req),
                Some(e) => Err(e),
            })
            .collect();
        let n_valid = checked.iter().filter(|r| r.is_ok()).count();
        let mut slots: Vec<Result<mpsc::Receiver<Delivery>, EngineError>> =
            Vec::with_capacity(checked.len());
        let ctx = cohortnet_obs::ctx::current();
        {
            let mut q = s.queue.lock().expect("engine queue poisoned");
            if q.len() + n_valid > s.cfg.queue_cap {
                drop(q);
                s.metrics.responses_err.inc();
                return Err(EngineError::Overloaded);
            }
            let now = Instant::now();
            for item in checked {
                match item {
                    Ok(req) => {
                        let (tx, rx) = mpsc::channel();
                        q.push_back(Pending {
                            req,
                            tx,
                            enqueued: now,
                            ctx,
                        });
                        slots.push(Ok(rx));
                    }
                    Err(e) => slots.push(Err(e)),
                }
            }
            s.metrics.queue_depth.set(q.len() as i64);
        }
        s.metrics.requests_total.add(n_valid as u64);
        s.cv.notify_all();
        // Collect replies and fold the batcher-measured stage numbers into
        // this thread's scratch. Several requests may land in different
        // batches; the worst (max) wait/compute describes the call.
        let mut stage_max: Option<(u32, u32, u32)> = None;
        let rows: Vec<Reply> = slots
            .into_iter()
            .map(|slot| match slot {
                Ok(rx) => match rx.recv() {
                    Ok(d) => {
                        let (q_us, c_us, bsz) = stage_max.unwrap_or((0, 0, 0));
                        stage_max = Some((
                            q_us.max(d.queued_us),
                            c_us.max(d.compute_us),
                            bsz.max(d.batch_size),
                        ));
                        d.reply
                    }
                    Err(_) => Err(EngineError::ShuttingDown),
                },
                Err(e) => Err(e),
            })
            .collect();
        if let Some((q_us, c_us, bsz)) = stage_max {
            stage::note_engine(q_us, c_us, bsz);
        }
        for row in &rows {
            match row {
                Ok(_) => s.metrics.responses_ok.inc(),
                Err(_) => s.metrics.responses_err.inc(),
            }
        }
        Ok(rows)
    }

    /// Stops accepting requests, drains the queue, and joins the batcher.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self
            .batcher
            .lock()
            .expect("engine batcher handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Collects the next minibatch: blocks while the queue is empty, then waits
/// until either `max_batch` requests have accumulated or the oldest request
/// has been queued for `max_delay_us`. Returns `None` when shut down with an
/// empty queue.
fn next_batch(s: &Shared) -> Option<Vec<Pending>> {
    let delay = Duration::from_micros(s.cfg.max_delay_us);
    let mut q = s.queue.lock().expect("engine queue poisoned");
    loop {
        if q.is_empty() {
            if s.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            // Idle: nap until a request arrives (re-check shutdown
            // periodically in case the notify raced the wait).
            q =
                s.cv.wait_timeout(q, Duration::from_millis(50))
                    .expect("engine queue poisoned")
                    .0;
            continue;
        }
        if q.len() >= s.cfg.max_batch || s.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let oldest = q.front().expect("non-empty queue").enqueued;
        let now = Instant::now();
        let deadline = oldest + delay;
        if now >= deadline {
            break;
        }
        q =
            s.cv.wait_timeout(q, deadline - now)
                .expect("engine queue poisoned")
                .0;
    }
    let take = q.len().min(s.cfg.max_batch);
    let batch: Vec<Pending> = q.drain(..take).collect();
    s.metrics.queue_depth.set(q.len() as i64);
    Some(batch)
}

/// Builds a [`RowScore`] from row `r` of a scored output.
fn row_score(out: &cohortnet::infer::ScoreOutput, r: usize) -> RowScore {
    RowScore::from_output(out, r)
}

impl RowScore {
    /// Extracts row `r` of a scored output. Public so the fleet router's
    /// canary check can score through the same path the engines use and
    /// compare rendered responses byte for byte.
    pub fn from_output(out: &cohortnet::infer::ScoreOutput, r: usize) -> RowScore {
        RowScore {
            prob: out.probs.row(r).to_vec(),
            logit: out.logits.row(r).to_vec(),
            base_logit: out.base_logits.row(r).to_vec(),
            cem_logit: out.cem_logits.as_ref().map(|m| m.row(r).to_vec()),
        }
    }
}

/// Scores one batch with panic capture. The happy path is one parallel
/// forward over the whole batch; a captured panic downgrades to per-request
/// rescue scoring so one poisoned request cannot take its neighbours down.
fn score_batch(s: &Shared, batch: &[Pending]) -> Vec<Reply> {
    let reqs: Vec<ScoreRequest> = batch.iter().map(|p| p.req.clone()).collect();
    let scored = std::panic::catch_unwind(AssertUnwindSafe(|| {
        s.scorer.score_requests_parallel(&reqs, s.cfg.threads)
    }));
    match scored {
        Ok(out) => (0..batch.len()).map(|r| Ok(row_score(&out, r))).collect(),
        Err(_) => {
            s.metrics.engine_restarts.inc();
            s.metrics.batch_rescues.inc();
            obs_warn!(
                target: LOG,
                "batch scoring panicked; rescuing requests individually",
                batch = batch.len(),
            );
            batch
                .iter()
                .map(|p| {
                    let one = std::slice::from_ref(&p.req);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        s.scorer.inferencer().score_requests(one)
                    })) {
                        Ok(out) => Ok(row_score(&out, 0)),
                        Err(_) => {
                            s.metrics.rows_failed.inc();
                            Err(EngineError::Internal(
                                "scoring this request panicked even in isolation".into(),
                            ))
                        }
                    }
                })
                .collect()
        }
    }
}

fn batcher_loop(s: &Shared) {
    while let Some(batch) = next_batch(s) {
        let mut batch_span = cohortnet_obs::span::span("serve.batch");
        batch_span.arg("size", batch.len());
        // Queue wait ends when the batch starts scoring.
        let batch_start = Instant::now();
        // Enforce per-request deadlines before spending compute: expired
        // requests are answered immediately and do not join the minibatch.
        let (batch, expired): (Vec<Pending>, Vec<Pending>) = if s.cfg.deadline_ms > 0 {
            let deadline = Duration::from_millis(s.cfg.deadline_ms);
            batch
                .into_iter()
                .partition(|p| batch_start.saturating_duration_since(p.enqueued) <= deadline)
        } else {
            (batch, Vec::new())
        };
        for pending in expired {
            s.metrics.requests_rejected_deadline.inc();
            let waited = batch_start.saturating_duration_since(pending.enqueued);
            let _ = pending.tx.send(Delivery {
                reply: Err(EngineError::DeadlineExceeded),
                queued_us: us32(waited),
                compute_us: 0,
                batch_size: 0,
            });
        }
        if batch.is_empty() {
            continue;
        }
        // Cross-thread trace link: the batch span follows the ctx of the
        // first request that carried one, so one fleet `/score` renders as
        // a single connected flame across worker and batcher threads.
        if let Some(ctx) = batch.iter().find_map(|p| p.ctx) {
            batch_span.follows(&ctx);
        }
        for pending in &batch {
            let waited = batch_start.saturating_duration_since(pending.enqueued);
            s.metrics.queue_wait_us.observe(waited.as_micros() as u64);
        }
        let rows = score_batch(s, &batch);
        let compute_us = us32(batch_start.elapsed());
        s.metrics.batch_compute_us.observe(compute_us as u64);
        s.metrics.batches_total.inc();
        s.metrics.batch_size.observe(batch.len() as u64);
        let now = Instant::now();
        let batch_size = batch.len() as u32;
        for (pending, row) in batch.iter().zip(rows) {
            let queued = batch_start.saturating_duration_since(pending.enqueued);
            // A dropped receiver just means the caller gave up; keep going.
            let _ = pending.tx.send(Delivery {
                reply: row,
                queued_us: us32(queued),
                compute_us,
                batch_size,
            });
            let waited = now.saturating_duration_since(pending.enqueued);
            s.metrics.latency_us.observe(waited.as_micros() as u64);
        }
    }
}

/// The batcher thread body: runs [`batcher_loop`], restarting it if it ever
/// panics outside the per-batch capture, so the engine degrades instead of
/// silently hanging every caller. After [`MAX_BATCHER_RESTARTS`] escapes the
/// queue is drained with errors and the thread exits; pending and future
/// callers get [`EngineError::ShuttingDown`]-style replies, never a hang.
fn batcher_thread(s: &Shared) {
    let mut restarts = 0u64;
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| batcher_loop(s))) {
            Ok(()) => return,
            Err(_) => {
                restarts += 1;
                s.metrics.engine_restarts.inc();
                obs_warn!(
                    target: LOG,
                    "batcher loop panicked; restarting",
                    restarts = restarts,
                );
                if restarts >= MAX_BATCHER_RESTARTS {
                    obs_error!(
                        target: LOG,
                        "batcher restart budget exhausted; draining queue with errors",
                        restarts = restarts,
                    );
                    s.shutdown.store(true, Ordering::SeqCst);
                    if let Ok(mut q) = s.queue.lock() {
                        for pending in q.drain(..) {
                            let _ = pending.tx.send(Delivery {
                                reply: Err(EngineError::Internal(
                                    "scoring engine restart budget exhausted".into(),
                                )),
                                queued_us: 0,
                                compute_us: 0,
                                batch_size: 0,
                            });
                        }
                    }
                    return;
                }
            }
        }
    }
}
