//! The micro-batching request engine.
//!
//! Requests enter a bounded queue; a single batcher thread coalesces them
//! into minibatches of up to `max_batch` requests, waiting at most
//! `max_delay_us` after the oldest queued request before scoring whatever
//! has accumulated. Batches are scored through
//! [`Inferencer::score_requests_parallel`], whose GEMM contract makes every
//! output row a function of its own input only — so a request's result is
//! bit-identical whether it is scored alone or coalesced into any batch,
//! at any worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cohortnet::infer::{Inferencer, ScoreRequest};

use crate::metrics::Metrics;

/// Batching knobs for the request engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum requests coalesced into one scored minibatch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits for company before the
    /// batch is scored anyway, in microseconds.
    pub max_delay_us: u64,
    /// Worker threads used to score a minibatch (0 = all available cores).
    pub threads: usize,
    /// Queue capacity; requests beyond it are rejected with
    /// [`EngineError::Overloaded`].
    pub queue_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            max_delay_us: 2_000,
            threads: 0,
            queue_cap: 1024,
        }
    }
}

/// The score of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RowScore {
    /// Calibrated per-label probability (Eq. 14).
    pub prob: Vec<f32>,
    /// Combined logit (individual + cohort paths).
    pub logit: Vec<f32>,
    /// Logit of the individual (MFLM) path alone.
    pub base_logit: Vec<f32>,
    /// Logit contribution of the cohort (CEM) path, when the model has
    /// discovery artefacts.
    pub cem_logit: Option<Vec<f32>>,
}

/// Why a request was not scored.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request payload has the wrong shape.
    BadRequest(String),
    /// The queue is full; retry later.
    Overloaded,
    /// The engine is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadRequest(why) => write!(f, "bad request: {why}"),
            EngineError::Overloaded => write!(f, "queue full, retry later"),
            EngineError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for EngineError {}

struct Pending {
    req: ScoreRequest,
    tx: mpsc::Sender<RowScore>,
    enqueued: Instant,
}

struct Shared {
    inf: Arc<Inferencer>,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cfg: EngineConfig,
    metrics: Arc<Metrics>,
}

/// The micro-batching scoring engine. Cheap to share behind an [`Arc`];
/// every handler thread calls [`Engine::score`] and blocks until the
/// batcher replies.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the engine (spawns the batcher thread) over a compiled
    /// inferencer.
    pub fn start(inf: Inferencer, cfg: EngineConfig, metrics: Arc<Metrics>) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_cap >= 1, "queue_cap must be at least 1");
        let shared = Arc::new(Shared {
            inf: Arc::new(inf),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
            metrics,
        });
        let worker = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("cohortnet-batcher".into())
            .spawn(move || batcher_loop(&worker))
            .expect("spawn batcher thread");
        Engine {
            shared,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// The compiled inferencer the engine scores with.
    pub fn inferencer(&self) -> &Inferencer {
        &self.shared.inf
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The batching configuration the engine runs with.
    pub fn config(&self) -> EngineConfig {
        self.shared.cfg
    }

    /// Scores one request, blocking until the batcher replies. The result
    /// is bit-identical no matter which batch the request lands in.
    ///
    /// # Errors
    /// [`EngineError::BadRequest`] on shape mismatch, `Overloaded` when the
    /// queue is full, `ShuttingDown` once shutdown has begun.
    pub fn score(&self, req: ScoreRequest) -> Result<RowScore, EngineError> {
        let s = &self.shared;
        let want_x = s.inf.time_steps() * s.inf.n_features();
        if req.x.len() != want_x {
            s.metrics.responses_err.inc();
            return Err(EngineError::BadRequest(format!(
                "x has {} values, expected time_steps * n_features = {} * {} = {}",
                req.x.len(),
                s.inf.time_steps(),
                s.inf.n_features(),
                want_x
            )));
        }
        if req.mask.len() != s.inf.n_features() {
            s.metrics.responses_err.inc();
            return Err(EngineError::BadRequest(format!(
                "mask has {} values, expected n_features = {}",
                req.mask.len(),
                s.inf.n_features()
            )));
        }
        if s.shutdown.load(Ordering::SeqCst) {
            s.metrics.responses_err.inc();
            return Err(EngineError::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = s.queue.lock().expect("engine queue poisoned");
            if q.len() >= s.cfg.queue_cap {
                drop(q);
                s.metrics.responses_err.inc();
                return Err(EngineError::Overloaded);
            }
            q.push_back(Pending {
                req,
                tx,
                enqueued: Instant::now(),
            });
            s.metrics.queue_depth.set(q.len() as i64);
        }
        s.metrics.requests_total.inc();
        s.cv.notify_all();
        match rx.recv() {
            Ok(row) => {
                s.metrics.responses_ok.inc();
                Ok(row)
            }
            Err(_) => {
                s.metrics.responses_err.inc();
                Err(EngineError::ShuttingDown)
            }
        }
    }

    /// Scores several requests, enqueueing them all before waiting so they
    /// can coalesce into the same minibatch. Results come back in input
    /// order; the first failure aborts (remaining rows are still scored and
    /// discarded by the batcher).
    ///
    /// # Errors
    /// Same failure modes as [`Engine::score`].
    pub fn score_many(&self, reqs: Vec<ScoreRequest>) -> Result<Vec<RowScore>, EngineError> {
        let s = &self.shared;
        for req in &reqs {
            let want_x = s.inf.time_steps() * s.inf.n_features();
            if req.x.len() != want_x || req.mask.len() != s.inf.n_features() {
                s.metrics.responses_err.inc();
                return Err(EngineError::BadRequest(format!(
                    "instance shapes must be x: {} (= {} x {}), mask: {}",
                    want_x,
                    s.inf.time_steps(),
                    s.inf.n_features(),
                    s.inf.n_features()
                )));
            }
        }
        if s.shutdown.load(Ordering::SeqCst) {
            s.metrics.responses_err.inc();
            return Err(EngineError::ShuttingDown);
        }
        let n = reqs.len();
        let mut receivers = Vec::with_capacity(n);
        {
            let mut q = s.queue.lock().expect("engine queue poisoned");
            if q.len() + n > s.cfg.queue_cap {
                drop(q);
                s.metrics.responses_err.inc();
                return Err(EngineError::Overloaded);
            }
            let now = Instant::now();
            for req in reqs {
                let (tx, rx) = mpsc::channel();
                q.push_back(Pending {
                    req,
                    tx,
                    enqueued: now,
                });
                receivers.push(rx);
            }
            s.metrics.queue_depth.set(q.len() as i64);
        }
        s.metrics.requests_total.add(n as u64);
        s.cv.notify_all();
        let mut rows = Vec::with_capacity(n);
        for rx in receivers {
            match rx.recv() {
                Ok(row) => {
                    s.metrics.responses_ok.inc();
                    rows.push(row);
                }
                Err(_) => {
                    s.metrics.responses_err.inc();
                    return Err(EngineError::ShuttingDown);
                }
            }
        }
        Ok(rows)
    }

    /// Stops accepting requests, drains the queue, and joins the batcher.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self
            .batcher
            .lock()
            .expect("engine batcher handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Collects the next minibatch: blocks while the queue is empty, then waits
/// until either `max_batch` requests have accumulated or the oldest request
/// has been queued for `max_delay_us`. Returns `None` when shut down with an
/// empty queue.
fn next_batch(s: &Shared) -> Option<Vec<Pending>> {
    let delay = Duration::from_micros(s.cfg.max_delay_us);
    let mut q = s.queue.lock().expect("engine queue poisoned");
    loop {
        if q.is_empty() {
            if s.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            // Idle: nap until a request arrives (re-check shutdown
            // periodically in case the notify raced the wait).
            q =
                s.cv.wait_timeout(q, Duration::from_millis(50))
                    .expect("engine queue poisoned")
                    .0;
            continue;
        }
        if q.len() >= s.cfg.max_batch || s.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let oldest = q.front().expect("non-empty queue").enqueued;
        let now = Instant::now();
        let deadline = oldest + delay;
        if now >= deadline {
            break;
        }
        q =
            s.cv.wait_timeout(q, deadline - now)
                .expect("engine queue poisoned")
                .0;
    }
    let take = q.len().min(s.cfg.max_batch);
    let batch: Vec<Pending> = q.drain(..take).collect();
    s.metrics.queue_depth.set(q.len() as i64);
    Some(batch)
}

fn batcher_loop(s: &Shared) {
    while let Some(batch) = next_batch(s) {
        let mut batch_span = cohortnet_obs::span::span("serve.batch");
        batch_span.arg("size", batch.len());
        // Queue wait ends when the batch starts scoring.
        let batch_start = Instant::now();
        for pending in &batch {
            let waited = batch_start.saturating_duration_since(pending.enqueued);
            s.metrics.queue_wait_us.observe(waited.as_micros() as u64);
        }
        let reqs: Vec<ScoreRequest> = batch.iter().map(|p| p.req.clone()).collect();
        let out = s.inf.score_requests_parallel(&reqs, s.cfg.threads);
        s.metrics
            .batch_compute_us
            .observe(batch_start.elapsed().as_micros() as u64);
        s.metrics.batches_total.inc();
        s.metrics.batch_size.observe(batch.len() as u64);
        let now = Instant::now();
        for (r, pending) in batch.iter().enumerate() {
            let row = RowScore {
                prob: out.probs.row(r).to_vec(),
                logit: out.logits.row(r).to_vec(),
                base_logit: out.base_logits.row(r).to_vec(),
                cem_logit: out.cem_logits.as_ref().map(|m| m.row(r).to_vec()),
            };
            // A dropped receiver just means the caller gave up; keep going.
            let _ = pending.tx.send(row);
            let waited = now.saturating_duration_since(pending.enqueued);
            s.metrics.latency_us.observe(waited.as_micros() as u64);
        }
    }
}
