//! The server's readiness event loop: nonblocking accept, per-connection
//! state machines, and a worker pool gluing complete requests to the
//! blocking scoring engine.
//!
//! One thread owns every socket and drives them through a small state
//! machine per connection:
//!
//! ```text
//!            bytes arrive            complete request
//!   Reading ──────────────▶ Reading ─────────────────▶ Busy
//!      ▲                                                 │ worker renders
//!      │ keep-alive, next request                        ▼
//!      └──────────────────────────────────── Writing ◀───┘
//!                                               │ parse/limit error
//!                                               ▼
//!                                           Draining ──▶ closed
//! ```
//!
//! * **Reading** — accumulate bytes; [`crate::http::try_parse_request`]
//!   decides complete / partial / hopeless. An empty buffer means the
//!   connection is idle between requests (idle timeout applies); a partial
//!   buffer means mid-request (read timeout → `408`).
//! * **Busy** — the request sits in the worker queue or the engine; read
//!   interest is dropped so a pipelining client is backpressured by TCP
//!   itself (one request in flight per connection, responses in order).
//! * **Writing** — flush the rendered response; on completion either loop
//!   back to Reading (keep-alive), close, or switch to Draining.
//! * **Draining** — error responses (`400`/`408`/`413`/`503`) may race a
//!   client still sending its request; an immediate `close(2)` would reset
//!   the connection and eat the response. Instead the write side is shut
//!   down (FIN after the response bytes) and the read side is discarded for
//!   a bounded byte/time budget so the client reliably observes the status.
//!
//! The accept path never blocks on any client: over-limit `503`s are
//! queued on the rejected connection's own state machine like every other
//! response. [`ConnLimiter`] enforces `max_connections` with a CAS loop,
//! so the active gauge can never pass the cap, even transiently.
//!
//! Workers call the engine's blocking [`crate::engine::Engine::score_many`]
//! and hand finished response bytes back through a completion list plus a
//! [`Waker`] nudge; the loop never computes, workers never touch sockets.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cohortnet_obs::flight::{FixedStr, FlightRecord};
use cohortnet_obs::{ctx, obs_info, stage};

use crate::http::{render_response, try_parse_request, HttpError, Request};
use crate::reactor::{Interest, Poller, WakeReceiver};
use crate::server::{error_body, next_request_id, AppState, ServerCtl, LOG};

/// Listener registration token.
pub(crate) const TOKEN_LISTENER: u64 = 0;
/// Waker registration token.
pub(crate) const TOKEN_WAKER: u64 = 1;
/// First connection token; tokens are never reused within a server.
const TOKEN_FIRST_CONN: u64 = 2;

/// Poll timeout, which doubles as the timeout-sweep cadence.
const TICK: Duration = Duration::from_millis(25);
/// Per-connection read chunk.
const READ_CHUNK: usize = 16 << 10;
/// Bytes of late client data discarded after an error response before the
/// connection is cut anyway.
const DRAIN_BYTE_BUDGET: usize = 256 << 10;
/// Wall-clock budget for the same drain.
const DRAIN_TIME_BUDGET: Duration = Duration::from_millis(500);
/// How long a stopping server waits for in-flight work before cutting the
/// remaining connections.
const STOP_DRAIN_BUDGET: Duration = Duration::from_secs(5);

/// Exact connection-count gate. `try_acquire` only increments when the
/// result stays within the cap (compare-exchange loop), so — unlike a
/// `fetch_add`-then-check — the gauge never overshoots `cap`, even while
/// many accepts race.
pub(crate) struct ConnLimiter {
    active: AtomicUsize,
    cap: usize,
}

impl ConnLimiter {
    /// A limiter admitting at most `cap` holders (0 = unlimited).
    pub(crate) fn new(cap: usize) -> Self {
        ConnLimiter {
            active: AtomicUsize::new(0),
            cap,
        }
    }

    /// Takes a slot if one is free. Never lets `active` pass the cap.
    pub(crate) fn try_acquire(&self) -> bool {
        if self.cap == 0 {
            self.active.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.cap {
                return false;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Returns a slot taken by a successful `try_acquire`.
    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Currently held slots.
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }
}

/// A complete request handed from the event loop to a worker.
pub(crate) struct Job {
    /// Token of the connection awaiting the response.
    pub(crate) conn: u64,
    pub(crate) req: Request,
    pub(crate) rid: String,
    /// When the request was fully parsed (request log latency origin).
    pub(crate) t0: Instant,
    /// When the request's first byte arrived (total-latency origin).
    pub(crate) t_first: Instant,
    /// First byte → fully parsed, µs (the accept stage).
    pub(crate) accept_us: u32,
}

/// A flight-recorder entry waiting on its final stage. Built by whoever
/// rendered the response (worker or loop-level error path); the event
/// loop stamps `write_us`/`total_us` when the last byte flushes, then
/// commits the record to the ring.
pub(crate) struct FlightPending {
    pub(crate) record: FlightRecord,
    /// First byte of the request (total-latency origin).
    pub(crate) start: Instant,
    /// Response handed to the event loop (write-stage origin).
    pub(crate) ready: Instant,
}

impl FlightPending {
    /// An entry for a loop-level error response (no worker involved): the
    /// whole wait so far is attributed to the accept stage.
    fn error(rid: &str, route: &str, status: u16, first_byte: Option<Instant>) -> FlightPending {
        let now = Instant::now();
        let start = first_byte.unwrap_or(now);
        let mut record = FlightRecord {
            rid: FixedStr::new(rid),
            route: FixedStr::new(route),
            status,
            ..FlightRecord::default()
        };
        record.stage.accept_us = us32(now.saturating_duration_since(start));
        FlightPending {
            record,
            start,
            ready: now,
        }
    }
}

/// Rendered response bytes handed back from a worker to the event loop.
pub(crate) struct Done {
    pub(crate) conn: u64,
    pub(crate) bytes: Vec<u8>,
    pub(crate) close: bool,
    pub(crate) flight: Option<FlightPending>,
}

/// Duration as µs, saturating into a `u32` (~71 minutes).
fn us32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

struct JobQueueInner {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

/// Bounded dispatch queue between the event loop and the workers. The loop
/// side is strictly nonblocking ([`JobQueue::try_push`] refuses instead of
/// waiting, which becomes an immediate `503`); the worker side blocks on
/// [`JobQueue::pop`]. After [`JobQueue::close`], queued jobs still drain
/// (graceful shutdown finishes accepted work) and `pop` then returns
/// `None`.
pub(crate) struct JobQueue {
    inner: Mutex<JobQueueInner>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    pub(crate) fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues without blocking; gives the job back when the queue is full
    /// or closed (the caller answers `503`).
    // The fat Err variant is the point: a refused job returns whole so the
    // caller still owns its request and connection.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if inner.closed || inner.jobs.len() >= self.cap {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and empty.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue poisoned");
        }
    }

    /// Stops accepting new jobs and lets workers drain the backlog.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("job queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Reading,
    Busy,
    Writing,
    Draining,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    state: ConnState,
    interest: Interest,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    close_after_write: bool,
    drain_after_write: bool,
    drain_deadline: Instant,
    drain_budget: usize,
    peer_eof: bool,
    has_permit: bool,
    /// Requests fully served on this connection (keep-alive depth).
    served: u64,
    /// When the current request's first byte arrived (None between
    /// requests); consumed at parse completion into the accept stage.
    req_first_byte: Option<Instant>,
    /// Flight-recorder entry for the response being written, committed to
    /// the ring when the last byte flushes.
    flight: Option<FlightPending>,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, has_permit: bool) -> Self {
        Conn {
            stream,
            token,
            state: ConnState::Reading,
            interest: Interest::READ,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            close_after_write: false,
            drain_after_write: false,
            drain_deadline: Instant::now(),
            drain_budget: 0,
            peer_eof: false,
            has_permit: false,
            served: 0,
            req_first_byte: None,
            flight: None,
        }
        .with_permit(has_permit)
    }

    fn with_permit(mut self, has_permit: bool) -> Self {
        self.has_permit = has_permit;
        self
    }

    /// Loads a response and switches to Writing. `drain` marks error
    /// responses that may race a still-sending client (see module docs).
    fn queue_response(&mut self, bytes: Vec<u8>, close: bool, drain: bool) {
        self.out = bytes;
        self.out_pos = 0;
        self.close_after_write = close;
        self.drain_after_write = drain;
        self.state = ConnState::Writing;
        self.last_activity = Instant::now();
    }
}

enum Flush {
    Done,
    Pending,
    Broken,
}

fn flush_out(conn: &mut Conn) -> Flush {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Flush::Broken,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Broken,
        }
    }
    Flush::Done
}

/// Applies the wanted interest set, skipping the syscall when unchanged.
/// `false` means the registration is broken and the conn must close.
fn set_interest(conn: &mut Conn, poller: &mut Poller, want: Interest) -> bool {
    if conn.interest == want {
        return true;
    }
    match poller.modify(conn.stream.as_raw_fd(), conn.token, want) {
        Ok(()) => {
            conn.interest = want;
            true
        }
        Err(_) => false,
    }
}

/// Renders a loop-level (not worker-routed) response with its own request
/// id, mirroring what `handle_connection` used to attach to early errors.
/// Returns the rendered bytes plus the request id, so the caller can file
/// a matching flight-recorder entry.
fn render_error(status: u16, message: &str, retry_after: bool) -> (Vec<u8>, String) {
    let rid = next_request_id();
    let body = error_body(message);
    let retry_headers: [(&str, &str); 2] = [("X-Request-Id", rid.as_str()), ("Retry-After", "1")];
    let plain_headers: [(&str, &str); 1] = [("X-Request-Id", rid.as_str())];
    let headers: &[(&str, &str)] = if retry_after {
        &retry_headers
    } else {
        &plain_headers
    };
    let bytes = render_response(status, "application/json", &body, headers, true);
    (bytes, rid)
}

/// Drives a connection as far as it can go without blocking, from any
/// entry point (fresh bytes, write readiness, worker completion, timeout
/// verdict). Returns `false` when the connection must be closed.
fn pump(
    conn: &mut Conn,
    poller: &mut Poller,
    state: &Arc<AppState>,
    stopping: bool,
    inflight: &mut usize,
) -> bool {
    loop {
        match conn.state {
            ConnState::Writing => match flush_out(conn) {
                Flush::Pending => return set_interest(conn, poller, Interest::WRITE),
                Flush::Broken => return false,
                Flush::Done => {
                    conn.out.clear();
                    conn.out_pos = 0;
                    conn.served += 1;
                    if let Some(mut pending) = conn.flight.take() {
                        let now = Instant::now();
                        let write_us = us32(now.saturating_duration_since(pending.ready));
                        pending.record.stage.write_us = write_us;
                        pending.record.total_us =
                            us32(now.saturating_duration_since(pending.start));
                        state.metrics.stage_write_us.observe(write_us as u64);
                        state.flight.record(&pending.record);
                    }
                    if conn.drain_after_write {
                        // FIN after the response bytes, then discard late
                        // request data so the client reliably reads the
                        // status before seeing the close.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.state = ConnState::Draining;
                        conn.drain_deadline = Instant::now() + DRAIN_TIME_BUDGET;
                        conn.drain_budget = DRAIN_BYTE_BUDGET.saturating_sub(conn.buf.len());
                        conn.buf.clear();
                        if conn.peer_eof || conn.drain_budget == 0 {
                            return false;
                        }
                        continue;
                    }
                    if conn.close_after_write {
                        return false;
                    }
                    if stopping && conn.buf.is_empty() {
                        return false;
                    }
                    conn.state = ConnState::Reading;
                    conn.last_activity = Instant::now();
                    continue;
                }
            },
            ConnState::Reading => match try_parse_request(&conn.buf) {
                Ok(Some(parsed)) => {
                    conn.buf.drain(..parsed.consumed);
                    let t_first = conn.req_first_byte.take().unwrap_or_else(Instant::now);
                    let accept_us = us32(t_first.elapsed());
                    state.metrics.stage_accept_us.observe(accept_us as u64);
                    if stopping {
                        let (bytes, rid) = render_error(503, "server is shutting down", true);
                        conn.flight = Some(FlightPending::error(
                            &rid,
                            &parsed.req.path,
                            503,
                            Some(t_first),
                        ));
                        conn.queue_response(bytes, true, false);
                        continue;
                    }
                    if conn.served > 0 {
                        state.metrics.keepalive_requests.inc();
                    }
                    let job = Job {
                        conn: conn.token,
                        req: parsed.req,
                        rid: next_request_id(),
                        t0: Instant::now(),
                        t_first,
                        accept_us,
                    };
                    match state.jobs.try_push(job) {
                        Ok(()) => {
                            *inflight += 1;
                            conn.state = ConnState::Busy;
                            return set_interest(conn, poller, Interest::NONE);
                        }
                        Err(job) => {
                            state.metrics.dispatch_rejected.inc();
                            let (bytes, rid) =
                                render_error(503, "server overloaded, retry later", true);
                            conn.flight = Some(FlightPending::error(
                                &rid,
                                &job.req.path,
                                503,
                                Some(job.t_first),
                            ));
                            conn.queue_response(bytes, job.req.close, false);
                            continue;
                        }
                    }
                }
                Ok(None) => {
                    if conn.peer_eof {
                        if conn.buf.is_empty() {
                            return false;
                        }
                        let why = if conn.buf.windows(4).any(|w| w == b"\r\n\r\n") {
                            "connection closed mid-body"
                        } else {
                            "connection closed mid-head"
                        };
                        let msg = HttpError::Malformed(why.into()).to_string();
                        let (bytes, rid) = render_error(400, &msg, false);
                        conn.flight = Some(FlightPending::error(
                            &rid,
                            "",
                            400,
                            conn.req_first_byte.take(),
                        ));
                        conn.queue_response(bytes, true, true);
                        continue;
                    }
                    return set_interest(conn, poller, Interest::READ);
                }
                Err(e) => {
                    let (status, msg) = match &e {
                        HttpError::TooLarge => (413, "request too large".to_string()),
                        other => (400, other.to_string()),
                    };
                    let (bytes, rid) = render_error(status, &msg, false);
                    conn.flight = Some(FlightPending::error(
                        &rid,
                        "",
                        status,
                        conn.req_first_byte.take(),
                    ));
                    conn.queue_response(bytes, true, true);
                    continue;
                }
            },
            ConnState::Busy => return set_interest(conn, poller, Interest::NONE),
            ConnState::Draining => {
                let mut scratch = [0u8; READ_CHUNK];
                loop {
                    if Instant::now() >= conn.drain_deadline {
                        return false;
                    }
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => return false,
                        Ok(n) => {
                            if n >= conn.drain_budget {
                                return false;
                            }
                            conn.drain_budget -= n;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return set_interest(conn, poller, Interest::READ);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => return false,
                    }
                }
            }
        }
    }
}

/// Pulls whatever bytes are ready into the connection buffer, then pumps.
fn on_readable(
    conn: &mut Conn,
    poller: &mut Poller,
    state: &Arc<AppState>,
    stopping: bool,
    inflight: &mut usize,
) -> bool {
    if conn.state == ConnState::Reading && !conn.peer_eof {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.req_first_byte.is_none() {
                        conn.req_first_byte = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    // Yield to the parser once a request could plausibly be
                    // complete; level-triggered polling re-delivers the rest.
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    pump(conn, poller, state, stopping, inflight)
}

/// Spawns the worker pool: each worker pulls complete requests, runs the
/// (blocking) router/engine, renders the response bytes, and posts them to
/// the completion list with a waker nudge.
pub(crate) fn spawn_workers(state: &Arc<AppState>, n: usize) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name(format!("cohortnet-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(state: &Arc<AppState>) {
    while let Some(job) = state.jobs.pop() {
        let queue_us = us32(job.t0.elapsed());
        state
            .metrics
            .stage_dispatch_wait_us
            .observe(queue_us as u64);
        stage::begin(job.accept_us, queue_us);
        // Continue the client's trace if it sent a valid `traceparent`;
        // otherwise start a fresh root. The request span `follows` this
        // ctx, and stages running on other threads (the batcher) link back
        // through the ctx published in the thread-local scope below.
        let ctx0 = job
            .req
            .traceparent
            .as_deref()
            .and_then(ctx::TraceCtx::parse)
            .unwrap_or_else(ctx::TraceCtx::root);
        let mut span = cohortnet_obs::span::span("serve.request");
        span.follows(&ctx0);
        span.arg("request_id", &job.rid);
        span.arg("method", &job.req.method)
            .arg("path", &job.req.path);
        let resp = {
            let _ctx = ctx::scope(ctx0.child(span.id()));
            state.app.handle(&job.req, &ServerCtl::new(state))
        };
        let status = resp.status;
        let close = job.req.close || resp.close;
        let timing;
        let mut headers: Vec<(&str, &str)> = vec![("X-Request-Id", job.rid.as_str())];
        if status == 429 || status == 503 {
            headers.push(("Retry-After", "1"));
        }
        if job.req.debug_timing {
            timing = stage::peek().server_timing_value();
            headers.push(("Server-Timing", timing.as_str()));
        }
        let render_t0 = Instant::now();
        let bytes = render_response(status, resp.content_type, &resp.body, &headers, close);
        let render_us = us32(render_t0.elapsed());
        state.metrics.render_us.observe(render_us as u64);
        stage::note_render(render_us);
        let timings = stage::take();
        span.arg("status", status);
        span.arg("queue_us", timings.queue_us)
            .arg("compute_us", timings.compute_us);
        if timings.batch_size > 0 {
            span.arg("batch", timings.batch_size);
        }
        obs_info!(
            target: LOG,
            "request",
            request_id = job.rid,
            method = job.req.method,
            path = job.req.path,
            status = status,
            dur_us = job.t0.elapsed().as_micros(),
        );
        let mut record = FlightRecord {
            rid: FixedStr::new(&job.rid),
            route: FixedStr::new(&job.req.path),
            status,
            stage: timings,
            ..FlightRecord::default()
        };
        record.set_trace(&ctx0);
        state
            .completions
            .lock()
            .expect("completions poisoned")
            .push(Done {
                conn: job.conn,
                bytes,
                close,
                flight: Some(FlightPending {
                    record,
                    start: job.t_first,
                    ready: Instant::now(),
                }),
            });
        state.waker.wake();
    }
}

/// Sets the server's done flag on every exit path (including a panic), so
/// `Server::join`/`shutdown` can never hang on a dead loop.
struct DoneGuard<'a>(&'a AppState);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        let (lock, cv) = &self.0.done;
        *lock.lock().expect("done flag poisoned") = true;
        cv.notify_all();
    }
}

/// The event loop body. Owns the listener, the poller, every connection,
/// and the worker pool; returns only after stop + drain, with workers
/// joined (the engine is shut down afterwards by `Server::finish`).
pub(crate) fn run(
    listener: TcpListener,
    mut poller: Poller,
    wake_rx: WakeReceiver,
    state: Arc<AppState>,
) {
    let _done = DoneGuard(&state);
    let workers = spawn_workers(&state, state.worker_count);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut inflight = 0usize;
    let mut stopping = false;
    let mut stop_deadline = Instant::now();
    let mut events = Vec::new();
    let read_timeout = state.effective_read_timeout();

    macro_rules! close_conn {
        ($conn:expr) => {{
            let conn: Conn = $conn;
            let _ = poller.deregister(conn.stream.as_raw_fd());
            if conn.has_permit {
                state.limiter.release();
            }
            drop(conn);
            state
                .metrics
                .conns_active
                .set(state.limiter.active() as i64);
        }};
    }

    loop {
        if !stopping && state.stop.load(Ordering::SeqCst) {
            stopping = true;
            stop_deadline = Instant::now() + STOP_DRAIN_BUDGET;
            let _ = poller.deregister(listener.as_raw_fd());
            // Idle keep-alive connections have nothing in flight: cut them
            // now so only mid-request work gates the drain.
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.state == ConnState::Reading && c.buf.is_empty())
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                if let Some(conn) = conns.remove(&token) {
                    close_conn!(conn);
                }
            }
        }
        if stopping && ((inflight == 0 && conns.is_empty()) || Instant::now() >= stop_deadline) {
            break;
        }

        if poller.wait(&mut events, Some(TICK)).is_err() {
            break;
        }

        let mut accept_ready = false;
        let taken = std::mem::take(&mut events);
        for ev in &taken {
            match ev.token {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKER => wake_rx.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let keep = if ev.closed && conn.state == ConnState::Busy {
                        // Peer is gone; the in-flight response has no
                        // reader. The completion harvest tolerates the
                        // missing token.
                        false
                    } else if ev.readable {
                        on_readable(conn, &mut poller, &state, stopping, &mut inflight)
                    } else if ev.writable && conn.state == ConnState::Writing {
                        pump(conn, &mut poller, &state, stopping, &mut inflight)
                    } else {
                        !ev.closed
                    };
                    if !keep {
                        if let Some(conn) = conns.remove(&token) {
                            close_conn!(conn);
                        }
                    }
                }
            }
        }
        events = taken;

        // Worker completions: attach rendered responses and flush.
        let dones: Vec<Done> = {
            let mut pending = state.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *pending)
        };
        for done in dones {
            inflight = inflight.saturating_sub(1);
            let Some(conn) = conns.get_mut(&done.conn) else {
                continue;
            };
            if conn.state != ConnState::Busy {
                continue;
            }
            conn.flight = done.flight;
            conn.queue_response(done.bytes, done.close, false);
            if !pump(conn, &mut poller, &state, stopping, &mut inflight) {
                if let Some(conn) = conns.remove(&done.conn) {
                    close_conn!(conn);
                }
            }
        }

        if accept_ready && !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let token = next_token;
                        next_token += 1;
                        let admitted = state.limiter.try_acquire();
                        let mut conn = Conn::new(stream, token, admitted);
                        if !admitted {
                            state.metrics.conns_rejected.inc();
                            let (bytes, rid) =
                                render_error(503, "connection limit reached, retry later", true);
                            conn.flight = Some(FlightPending::error(&rid, "", 503, None));
                            conn.queue_response(bytes, true, true);
                        }
                        let want = if admitted {
                            Interest::READ
                        } else {
                            Interest::WRITE
                        };
                        conn.interest = want;
                        if poller
                            .register(conn.stream.as_raw_fd(), token, want)
                            .is_err()
                        {
                            if conn.has_permit {
                                state.limiter.release();
                            }
                            continue;
                        }
                        state
                            .metrics
                            .conns_active
                            .set(state.limiter.active() as i64);
                        if !pump(&mut conn, &mut poller, &state, stopping, &mut inflight) {
                            close_conn!(conn);
                        } else {
                            conns.insert(token, conn);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Timeout sweep (bounded by the TICK-sized poll timeout above).
        let now = Instant::now();
        let mut expired: Vec<(u64, bool)> = Vec::new();
        for (&token, conn) in &conns {
            match conn.state {
                ConnState::Reading if conn.buf.is_empty() => {
                    if now.duration_since(conn.last_activity) >= state.idle_timeout {
                        expired.push((token, false));
                    }
                }
                ConnState::Reading => {
                    if now.duration_since(conn.last_activity) >= read_timeout {
                        expired.push((token, true));
                    }
                }
                ConnState::Writing => {
                    if now.duration_since(conn.last_activity) >= state.idle_timeout {
                        expired.push((token, false));
                    }
                }
                ConnState::Draining => {
                    if now >= conn.drain_deadline {
                        expired.push((token, false));
                    }
                }
                ConnState::Busy => {}
            }
        }
        for (token, respond_408) in expired {
            if respond_408 {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                let msg = HttpError::Timeout.to_string();
                let (bytes, rid) = render_error(408, &msg, false);
                conn.flight = Some(FlightPending::error(
                    &rid,
                    "",
                    408,
                    conn.req_first_byte.take(),
                ));
                conn.queue_response(bytes, true, true);
                if !pump(conn, &mut poller, &state, stopping, &mut inflight) {
                    if let Some(conn) = conns.remove(&token) {
                        close_conn!(conn);
                    }
                }
            } else {
                if let Some(conn) = conns.remove(&token) {
                    if conn.state == ConnState::Reading {
                        state.metrics.conns_idle_closed.inc();
                    }
                    close_conn!(conn);
                }
            }
        }
    }

    // Teardown: cut every remaining connection, let workers drain queued
    // jobs, and join them. `Server::finish` shuts the engine down after.
    for (_, conn) in conns.drain() {
        close_conn!(conn);
    }
    state.jobs.close();
    for handle in workers {
        let _ = handle.join();
    }
    obs_info!(target: LOG, "event loop stopped", backend = poller.backend());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: hammer the gate from many threads and record
    /// the highest concurrently-held count — it must never pass the cap.
    #[test]
    fn limiter_never_overshoots_under_contention() {
        const CAP: usize = 7;
        const THREADS: usize = 8;
        const ITERS: usize = 20_000;
        let limiter = Arc::new(ConnLimiter::new(CAP));
        let peak = Arc::new(AtomicUsize::new(0));
        let acquired = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let limiter = Arc::clone(&limiter);
                let peak = Arc::clone(&peak);
                let acquired = Arc::clone(&acquired);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        if limiter.try_acquire() {
                            acquired.fetch_add(1, Ordering::SeqCst);
                            peak.fetch_max(limiter.active(), Ordering::SeqCst);
                            limiter.release();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("hammer thread");
        }
        assert!(
            peak.load(Ordering::SeqCst) <= CAP,
            "gauge peaked at {} with cap {CAP}",
            peak.load(Ordering::SeqCst)
        );
        assert!(acquired.load(Ordering::SeqCst) > 0, "gate admitted nothing");
        assert_eq!(limiter.active(), 0, "permits leaked");
    }

    #[test]
    fn limiter_exact_at_saturation() {
        let limiter = ConnLimiter::new(2);
        assert!(limiter.try_acquire());
        assert!(limiter.try_acquire());
        assert!(!limiter.try_acquire(), "third acquire must fail at cap 2");
        assert_eq!(limiter.active(), 2);
        limiter.release();
        assert!(limiter.try_acquire(), "released slot must be reusable");
        limiter.release();
        limiter.release();
        assert_eq!(limiter.active(), 0);
    }

    #[test]
    fn unlimited_limiter_admits_everything() {
        let limiter = ConnLimiter::new(0);
        for _ in 0..100 {
            assert!(limiter.try_acquire());
        }
        assert_eq!(limiter.active(), 100);
    }

    #[test]
    fn job_queue_refuses_when_full_and_drains_after_close() {
        let q = JobQueue::new(2);
        let job = |i: u64| Job {
            conn: i,
            req: Request {
                method: "GET".into(),
                path: "/healthz".into(),
                close: true,
                ..Request::default()
            },
            rid: format!("r{i}"),
            t0: Instant::now(),
            t_first: Instant::now(),
            accept_us: 0,
        };
        assert!(q.try_push(job(1)).is_ok());
        assert!(q.try_push(job(2)).is_ok());
        let back = q.try_push(job(3)).expect_err("full queue must refuse");
        assert_eq!(back.conn, 3);
        q.close();
        assert!(q.try_push(job(4)).is_err(), "closed queue must refuse");
        assert_eq!(q.pop().expect("first queued job").conn, 1);
        assert_eq!(q.pop().expect("second queued job").conn, 2);
        assert!(q.pop().is_none(), "closed + empty → None");
    }
}
