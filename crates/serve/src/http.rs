//! A deliberately small HTTP/1.1 layer: enough to parse the request line,
//! headers and body of the server's endpoints and to write well-formed
//! responses.
//!
//! The core is the *incremental* parser [`try_parse_request`]: it looks at
//! whatever bytes have arrived so far and answers "complete request
//! (+ how many bytes it consumed)", "need more bytes", or a typed error.
//! That shape serves two callers:
//!
//! * the event-loop server feeds it per-connection receive buffers as
//!   readiness events deliver bytes, which is what makes HTTP/1.1
//!   keep-alive possible (leftover bytes after `consumed` are simply the
//!   start of the next request);
//! * the blocking [`read_request`] wraps it in a read loop over a
//!   [`TcpStream`] for tests, tools and the client side of the fuzz
//!   harness.
//!
//! Keep-alive is negotiated per request: HTTP/1.1 defaults to keep-alive,
//! HTTP/1.0 (or anything else) to close, and an explicit `Connection:`
//! header wins either way. The parsed verdict rides on [`Request::close`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on request body size (16 MiB) — scoring payloads are small.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// Hard cap on request head (request line + headers) size.
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string (text after `?`, without it; empty when absent).
    pub query: String,
    /// Decoded request body.
    pub body: String,
    /// Whether the connection must close after the response: `true` for
    /// `Connection: close`, for HTTP/1.0 without `Connection: keep-alive`,
    /// and for unrecognized protocol versions.
    pub close: bool,
    /// Whether the client sent `X-Debug-Timing: 1`, asking for a
    /// `Server-Timing` header with per-stage latency attribution.
    pub debug_timing: bool,
    /// The raw `traceparent` header value, when the client sent one —
    /// joins the server's spans to the caller's trace.
    pub traceparent: Option<String>,
}

/// A complete request plus the number of buffer bytes it occupied; bytes
/// past `consumed` belong to the next pipelined request.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The parsed request.
    pub req: Request,
    /// Bytes of the buffer this request consumed (head + body).
    pub consumed: usize,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The request violates the supported HTTP subset.
    Malformed(String),
    /// Head or body exceeded the size caps.
    TooLarge,
    /// The client stalled past the read timeout mid-request.
    Timeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Timeout => write!(f, "read timed out waiting for the request"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        // A read timeout surfaces as WouldBlock or TimedOut depending on
        // the platform; both mean "the client stalled", mapped to a typed
        // error so the server can answer 408 instead of a generic 400.
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            return HttpError::Timeout;
        }
        HttpError::Io(e)
    }
}

/// Default read timeout when the caller passes `timeout = None` to
/// [`read_request`] (the historical hard-coded value).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Attempts to parse one complete request from the start of `buf`.
///
/// Returns `Ok(Some(_))` with the request and its consumed length,
/// `Ok(None)` when the buffer holds only a prefix of a request (read more
/// and retry), or a typed error once the bytes can never become a valid
/// request (oversized head/body, bad syntax).
///
/// # Errors
/// [`HttpError::TooLarge`] on cap violations, [`HttpError::Malformed`] on
/// syntax errors; never [`HttpError::Io`] / [`HttpError::Timeout`] (those
/// belong to the transport driving the buffer).
pub fn try_parse_request(buf: &[u8]) -> Result<Option<ParsedRequest>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        return Ok(None);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 and unknown versions to
    // close. An explicit Connection header below overrides.
    let version = parts.next().unwrap_or("").trim();
    let mut close = !version.eq_ignore_ascii_case("HTTP/1.1");

    let mut content_length = 0usize;
    let mut debug_timing = false;
    let mut traceparent = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            } else if name.eq_ignore_ascii_case("x-debug-timing") {
                debug_timing = value.trim() == "1";
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }

    let body_start = head_end + 4;
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    let body = std::str::from_utf8(&buf[body_start..consumed])
        .map_err(|_| HttpError::Malformed("non-utf8 body".into()))?
        .to_string();

    Ok(Some(ParsedRequest {
        req: Request {
            method,
            path,
            query,
            body,
            close,
            debug_timing,
            traceparent,
        },
        consumed,
    }))
}

/// Looks up `key` in a raw query string (`a=1&b=2` form, no percent
/// decoding). A bare token (`?on`) matches as a key with an empty value.
pub fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        };
        (k == key).then_some(v)
    })
}

/// Reads and parses one request from the stream. Applies the given read
/// timeout (default [`DEFAULT_READ_TIMEOUT`]) so a stalled client cannot
/// pin the caller forever; a stall surfaces as [`HttpError::Timeout`].
pub fn read_request(
    stream: &mut TcpStream,
    timeout: Option<Duration>,
) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(timeout.unwrap_or(DEFAULT_READ_TIMEOUT)))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = try_parse_request(&buf)? {
            return Ok(parsed.req);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                if find_head_end(&buf).is_none() {
                    "connection closed mid-head"
                } else {
                    "connection closed mid-body"
                }
                .into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders a complete response as bytes. `extra_headers` are emitted
/// verbatim after the standard head (used for `X-Request-Id`); `close`
/// selects the `Connection:` verdict, which must match what the server
/// actually does with the socket afterwards.
pub fn render_response(
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
    close: bool,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes a complete `Connection: close` response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let raw = render_response(status, content_type, body, extra_headers, true);
    stream.write_all(&raw)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body, extra_headers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, None);
        writer.join().expect("writer thread");
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            b"POST /score?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.body, "{\"a\"");
        assert!(!req.close, "bare HTTP/1.1 defaults to keep-alive");
        assert!(!req.debug_timing);
        assert_eq!(req.traceparent, None);
    }

    #[test]
    fn captures_debug_timing_and_traceparent_headers() {
        let parsed = try_parse_request(
            b"POST /score HTTP/1.1\r\nX-Debug-Timing: 1\r\n\
              traceparent: 00-0123456789abcdef0011223344556677-deadbeefcafef00d-01\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .expect("parses")
        .expect("complete");
        assert!(parsed.req.debug_timing);
        assert_eq!(
            parsed.req.traceparent.as_deref(),
            Some("00-0123456789abcdef0011223344556677-deadbeefcafef00d-01")
        );
        // Any value other than "1" leaves the flag off.
        let parsed = try_parse_request(b"GET / HTTP/1.1\r\nX-Debug-Timing: yes\r\n\r\n")
            .expect("parses")
            .expect("complete");
        assert!(!parsed.req.debug_timing);
    }

    #[test]
    fn query_param_lookup() {
        assert_eq!(query_param("view=slowest&n=5", "view"), Some("slowest"));
        assert_eq!(query_param("view=slowest&n=5", "n"), Some("5"));
        assert_eq!(query_param("on", "on"), Some(""));
        assert_eq!(query_param("", "view"), None);
        assert_eq!(query_param("viewx=1", "view"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn incremental_parse_waits_for_every_byte() {
        let raw = b"POST /score HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            let status = try_parse_request(&raw[..cut]).expect("prefix is never an error");
            assert!(status.is_none(), "complete at premature cut {cut}");
        }
        let parsed = try_parse_request(raw)
            .expect("parses")
            .expect("complete request");
        assert_eq!(parsed.consumed, raw.len());
        assert_eq!(parsed.req.body, "hello");
    }

    #[test]
    fn incremental_parse_reports_pipelined_leftover() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let first = try_parse_request(raw)
            .expect("parses")
            .expect("complete request");
        assert_eq!(first.req.path, "/healthz");
        let rest = &raw[first.consumed..];
        let second = try_parse_request(rest)
            .expect("parses")
            .expect("complete request");
        assert_eq!(second.req.path, "/metrics");
        assert_eq!(first.consumed + second.consumed, raw.len());
    }

    #[test]
    fn connection_negotiation_follows_version_and_header() {
        let cases: [(&[u8], bool); 5] = [
            (b"GET / HTTP/1.1\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", false),
            (
                b"GET / HTTP/1.1\r\nConnection: Keep-Alive, TE\r\n\r\n",
                false,
            ),
        ];
        for (raw, want_close) in cases {
            let parsed = try_parse_request(raw)
                .expect("parses")
                .expect("complete request");
            assert_eq!(
                parsed.req.close,
                want_close,
                "close verdict for {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_includes_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            c.read_to_string(&mut out).expect("read");
            out
        });
        let (mut conn, _) = listener.accept().expect("accept");
        write_response(
            &mut conn,
            200,
            "text/plain",
            "hi",
            &[("X-Request-Id", "abc-1")],
        )
        .expect("write");
        drop(conn);
        let raw = reader.join().expect("reader thread");
        assert!(raw.contains("X-Request-Id: abc-1\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.ends_with("hi"), "{raw}");
    }

    #[test]
    fn rendered_keepalive_response_says_so() {
        let raw = render_response(200, "application/json", "{}", &[], false);
        let text = String::from_utf8(raw).expect("ascii response");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn stalled_client_yields_timeout_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Connect but never send a byte: the read must give up with the
        // typed Timeout error instead of blocking the handler forever.
        let client = TcpStream::connect(addr).expect("connect");
        let (mut conn, _) = listener.accept().expect("accept");
        let err = read_request(&mut conn, Some(Duration::from_millis(50))).expect_err("must fail");
        assert!(matches!(err, HttpError::Timeout), "{err}");
        drop(client);
    }

    #[test]
    fn rejects_truncated_body() {
        let err = round_trip(b"POST /score HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .expect_err("must fail");
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }
}
