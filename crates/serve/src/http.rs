//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`]: enough
//! to parse the request line, headers and body of the server's endpoints and
//! to write well-formed responses. One request per connection
//! (`Connection: close`), which keeps the accept loop and shutdown simple.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on request body size (16 MiB) — scoring payloads are small.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// Hard cap on request head (request line + headers) size.
pub const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Decoded request body.
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The request violates the supported HTTP subset.
    Malformed(String),
    /// Head or body exceeded the size caps.
    TooLarge,
    /// The client stalled past the read timeout mid-request.
    Timeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Timeout => write!(f, "read timed out waiting for the request"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        // A read timeout surfaces as WouldBlock or TimedOut depending on
        // the platform; both mean "the client stalled", mapped to a typed
        // error so the server can answer 408 instead of a generic 400.
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            return HttpError::Timeout;
        }
        HttpError::Io(e)
    }
}

/// Default read timeout when the caller passes `timeout = None` to
/// [`read_request`] (the historical hard-coded value).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Reads and parses one request from the stream. Applies the given read
/// timeout (default [`DEFAULT_READ_TIMEOUT`]) so a stalled client cannot
/// pin a handler thread forever; a stall surfaces as [`HttpError::Timeout`].
pub fn read_request(
    stream: &mut TcpStream,
    timeout: Option<Duration>,
) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(timeout.unwrap_or(DEFAULT_READ_TIMEOUT)))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Read until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }

    // Body: whatever followed the head in the buffer, then the remainder
    // from the socket.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body".into()))?;

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response and flushes. `extra_headers` are emitted
/// verbatim after the standard head (used for `X-Request-Id`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body, extra_headers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, None);
        writer.join().expect("writer thread");
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            b"POST /score?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn response_includes_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            c.read_to_string(&mut out).expect("read");
            out
        });
        let (mut conn, _) = listener.accept().expect("accept");
        write_response(
            &mut conn,
            200,
            "text/plain",
            "hi",
            &[("X-Request-Id", "abc-1")],
        )
        .expect("write");
        drop(conn);
        let raw = reader.join().expect("reader thread");
        assert!(raw.contains("X-Request-Id: abc-1\r\n"), "{raw}");
        assert!(raw.ends_with("hi"), "{raw}");
    }

    #[test]
    fn stalled_client_yields_timeout_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Connect but never send a byte: the read must give up with the
        // typed Timeout error instead of blocking the handler forever.
        let client = TcpStream::connect(addr).expect("connect");
        let (mut conn, _) = listener.accept().expect("accept");
        let err = read_request(&mut conn, Some(Duration::from_millis(50))).expect_err("must fail");
        assert!(matches!(err, HttpError::Timeout), "{err}");
        drop(client);
    }

    #[test]
    fn rejects_truncated_body() {
        let err = round_trip(b"POST /score HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .expect_err("must fail");
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }
}
