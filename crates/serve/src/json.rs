//! Minimal JSON support for the serving endpoints.
//!
//! The workspace is dependency-free by policy, so this module implements the
//! small JSON subset the server needs: full parsing of standard JSON texts
//! and rendering of finite numbers (non-finite floats render as `null` —
//! they cannot appear in valid JSON). Rust's shortest round-trip float
//! formatting is JSON-compatible (plain decimal, no scientific notation).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order out of scope — a sorted map is
    /// fine for request bodies.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets an array of numbers as `f32`s.
    pub fn as_f32_vec(&self) -> Option<Vec<f32>> {
        let arr = self.as_arr()?;
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            out.push(v.as_f64()? as f32);
        }
        Some(out)
    }
}

/// Parses a JSON text.
///
/// # Errors
/// Returns a short description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // Surrogate pairs are not needed for this server's
                        // payloads; reject rather than mis-decode.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "unsupported \\u surrogate".to_string())?,
                        );
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a value as compact JSON. Non-finite numbers become `null`.
pub fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(&mut out, value);
    out
}

fn render_into(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Json::Num(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                render_into(out, v);
            }
            out.push('}');
        }
    }
}

/// Convenience: builds an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a number array from `f32`s.
pub fn num_arr(values: &[f32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(f64::from(v))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let j = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .expect("parses");
        assert_eq!(
            j.get("a").unwrap().as_f32_vec(),
            Some(vec![1.0, -2.5, 1000.0])
        );
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn render_round_trips() {
        let j = obj(vec![
            ("probs", num_arr(&[0.25, 1.0])),
            ("name", Json::Str("a\"b".into())),
        ]);
        let text = render(&j);
        assert_eq!(parse(&text).unwrap(), j);
    }
}
