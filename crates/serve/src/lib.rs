//! # cohortnet-serve
//!
//! Online scoring for trained CohortNet snapshots: a micro-batching request
//! engine over the tape-free [`cohortnet::infer::Inferencer`], fronted by a
//! dependency-free HTTP/1.1 server on [`std::net::TcpListener`].
//!
//! * [`engine`] — bounded request queue that coalesces concurrent requests
//!   into minibatches (`max_batch` / `max_delay_us` knobs). The determinism
//!   contract is inherited from the inferencer's row independence: a request
//!   scores bit-identically alone or inside any batch.
//! * [`server`] — `POST /score`, `POST /explain`, `GET /cohorts`,
//!   `GET /healthz`, `GET /metrics`, `POST /shutdown`; graceful drain on
//!   shutdown.
//! * [`metrics`] — serving metric families (request counters, queue gauge,
//!   stage histograms), a thin shim over [`cohortnet_obs::metrics`]; the
//!   `/metrics` endpoint renders the per-server registry plus the process
//!   global one in Prometheus text format.
//! * [`client`] — a minimal blocking HTTP client plus a seeded retrying
//!   wrapper (capped exponential backoff + deterministic jitter), shared by
//!   the smoke binary, the throughput bench and the chaos harness.
//! * [`json`] — the minimal JSON parser/renderer the endpoints use.
//! * [`demo`] — a tiny synthetic-data training run producing a real
//!   snapshot, shared by the CLI's `--demo` mode, the smoke binary and the
//!   integration tests.

#![warn(missing_docs)]

pub mod client;
pub mod demo;
pub mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use engine::{Engine, EngineConfig, EngineError, RowScore};
pub use server::{serve, Server, ServerConfig};
