//! # cohortnet-serve
//!
//! Online scoring for trained CohortNet snapshots: a micro-batching request
//! engine over the tape-free [`cohortnet::infer::Inferencer`], fronted by a
//! dependency-free HTTP/1.1 server built on a readiness event loop.
//!
//! * [`engine`] — bounded request queue that coalesces concurrent requests
//!   into minibatches (`max_batch` / `max_delay_us` knobs). The determinism
//!   contract is inherited from the inferencer's row independence: a request
//!   scores bit-identically alone or inside any batch.
//! * [`server`] — `POST /score`, `POST /explain`, `GET /cohorts`,
//!   `GET /healthz`, `GET /metrics`, `GET /debug/{requests,config,trace}`,
//!   `POST /shutdown`; graceful drain on shutdown. Every request gets
//!   per-stage latency attribution (accept/queue/batch-wait/compute/
//!   render/write) recorded into an always-on flight recorder
//!   ([`cohortnet_obs::flight`]) behind `/debug/requests`, echoed as a
//!   `Server-Timing` header on `X-Debug-Timing: 1`, and — when tracing is
//!   on — linked into one connected cross-thread trace via
//!   [`cohortnet_obs::ctx`]. The transport core is a nonblocking event loop with
//!   HTTP/1.1 keep-alive and exact connection limiting, split from the
//!   application along the [`server::App`] trait — [`serve`] runs the
//!   single-model scoring app, [`serve_app`] runs anything else (the
//!   `cohortnet-fleet` router) behind the identical transport.
//! * [`stream`] — event-stream ingestion and online scoring (`POST
//!   /ingest`, `GET /sessions`): per-admission [`cohortnet::stream`]
//!   sessions under the prefix-identity contract, re-scored on the worker
//!   thread through the incremental cohort-index probe cache (never the
//!   batching engine). The batch surface is delegated to the same scoring
//!   app, so [`serve_stream`] answers `/score` byte-identically to
//!   [`serve`].
//! * [`reactor`] — the dependency-free readiness layer under the loop:
//!   epoll on Linux, poll(2) elsewhere (or via
//!   `COHORTNET_SERVE_BACKEND=poll`), plus the self-pipe waker. Public so
//!   the bench crate's open-loop load harness can drive thousands of
//!   client sockets off the same primitive.
//! * [`metrics`] — serving metric families (request counters, queue gauge,
//!   stage histograms), a thin shim over [`cohortnet_obs::metrics`]; the
//!   `/metrics` endpoint renders the per-server registry plus the process
//!   global one in Prometheus text format.
//! * [`client`] — a minimal blocking HTTP client plus a seeded retrying
//!   wrapper (capped exponential backoff + deterministic jitter), shared by
//!   the smoke binary, the throughput bench and the chaos harness.
//! * [`json`] — the minimal JSON parser/renderer the endpoints use.
//! * [`demo`] — a tiny synthetic-data training run producing a real
//!   snapshot, shared by the CLI's `--demo` mode, the smoke binary and the
//!   integration tests.

#![warn(missing_docs)]

pub mod client;
pub mod demo;
pub mod engine;
mod eventloop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod reactor;
pub mod server;
pub mod stream;

pub use engine::{Engine, EngineConfig, EngineError, RowScore};
pub use server::{
    debug_requests_body, debug_trace_body, serve, serve_app, App, AppResponse, Server,
    ServerConfig, ServerCtl, TransportConfig,
};
pub use stream::{serve_stream, StreamOptions};
