//! Lock-free serving metrics: request counters plus batch-size and latency
//! histograms, rendered in Prometheus text exposition format.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket cumulative histogram with atomic counters.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bound of each bucket (ascending); an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: &'static [u64],
    /// Per-bucket observation counts (len = bounds.len() + 1).
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values.
    sum: AtomicU64,
    /// Total observation count.
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending bucket upper bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at (or just above) the given quantile, estimated from the
    /// bucket bounds; `None` when empty. Used by the throughput bench.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    fn render(&self, out: &mut String, name: &str, help: &str) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {}\n", self.sum()));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

/// Bucket bounds for batch sizes (requests per scored minibatch).
pub const BATCH_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Bucket bounds for request latency in microseconds.
pub const LATENCY_US_BOUNDS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// All serving metrics, shared between the engine and the HTTP handlers.
#[derive(Debug)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub requests_total: AtomicU64,
    /// Requests answered successfully.
    pub responses_ok: AtomicU64,
    /// Requests answered with an error (bad input, overload, shutdown).
    pub responses_err: AtomicU64,
    /// Minibatches scored by the engine.
    pub batches_total: AtomicU64,
    /// Requests coalesced per scored minibatch.
    pub batch_size: Histogram,
    /// Queue-to-response latency per request, microseconds.
    pub latency_us: Histogram,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_err: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_size: Histogram::new(BATCH_SIZE_BOUNDS),
            latency_us: Histogram::new(LATENCY_US_BOUNDS),
        }
    }

    /// Renders everything in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, counter) in [
            (
                "cohortnet_requests_total",
                "Scoring requests accepted into the queue.",
                &self.requests_total,
            ),
            (
                "cohortnet_responses_ok_total",
                "Scoring requests answered successfully.",
                &self.responses_ok,
            ),
            (
                "cohortnet_responses_err_total",
                "Scoring requests answered with an error.",
                &self.responses_err,
            ),
            (
                "cohortnet_batches_total",
                "Minibatches scored by the engine.",
                &self.batches_total,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                counter.load(Ordering::Relaxed)
            ));
        }
        self.batch_size.render(
            &mut out,
            "cohortnet_batch_size",
            "Requests coalesced per scored minibatch.",
        );
        self.latency_us.render(
            &mut out,
            "cohortnet_request_latency_us",
            "Queue-to-response latency per request, microseconds.",
        );
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1, 4, 16]);
        for v in [1, 1, 3, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.quantile(0.5), Some(4)); // 3rd of 5 lands in le=4
        assert_eq!(h.quantile(1.0), Some(u64::MAX)); // overflow bucket
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.batch_size.observe(1);
        m.batch_size.observe(2);
        let text = m.render_prometheus();
        assert!(text.contains("cohortnet_requests_total 3"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"2\"} 2"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cohortnet_batch_size_count 2"));
    }
}
