//! Serving metrics, backed by [`cohortnet_obs::metrics`].
//!
//! This module is a thin shim: the counter/gauge/histogram primitives and
//! the Prometheus renderer live in `cohortnet-obs` (the workspace telemetry
//! crate — not `cohortnet-metrics`, which holds *evaluation* metrics such as
//! AUC-ROC and F1). Each server builds its own [`Registry`] so tests and
//! benches that run several servers in one process never share histograms;
//! [`Metrics::render_prometheus`] appends the process-wide
//! [`cohortnet_obs::metrics::global`] registry, so the `/metrics` endpoint
//! exposes discovery and training telemetry alongside the serving families —
//! one unified registry from the operator's point of view.

use std::sync::{Arc, OnceLock};

pub use cohortnet_obs::metrics::{Counter, Gauge, Histogram, Registry};

/// Bucket bounds for batch sizes (requests per scored minibatch).
pub const BATCH_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Bucket bounds for request latency in microseconds.
pub const LATENCY_US_BOUNDS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// All serving metrics, shared between the engine and the HTTP handlers.
/// Handles are pre-registered `Arc`s into the per-server registry, so the
/// observation path stays lock-free.
#[derive(Debug)]
pub struct Metrics {
    registry: Arc<Registry>,
    /// Requests accepted into the queue.
    pub requests_total: Arc<Counter>,
    /// Requests answered successfully.
    pub responses_ok: Arc<Counter>,
    /// Requests answered with an error (bad input, overload, shutdown).
    pub responses_err: Arc<Counter>,
    /// Minibatches scored by the engine.
    pub batches_total: Arc<Counter>,
    /// Requests rejected because they aged past the queue deadline.
    pub requests_rejected_deadline: Arc<Counter>,
    /// Times the engine captured a scoring panic and restarted (degraded
    /// rescue scoring or batcher-loop restart).
    pub engine_restarts: Arc<Counter>,
    /// Minibatches that fell back to per-request rescue scoring after a
    /// captured panic.
    pub batch_rescues: Arc<Counter>,
    /// Requests whose scoring panicked even in isolation.
    pub rows_failed: Arc<Counter>,
    /// Connections rejected at accept because the connection limit was
    /// reached.
    pub conns_rejected: Arc<Counter>,
    /// Keep-alive idle connections closed by the idle timeout.
    pub conns_idle_closed: Arc<Counter>,
    /// Requests served beyond the first on a keep-alive connection.
    pub keepalive_requests: Arc<Counter>,
    /// Requests answered `503` because the dispatch queue between the
    /// event loop and the workers was full.
    pub dispatch_rejected: Arc<Counter>,
    /// Connections currently open (holding a `max_connections` slot).
    pub conns_active: Arc<Gauge>,
    /// Requests currently waiting in the engine queue.
    pub queue_depth: Arc<Gauge>,
    /// Requests coalesced per scored minibatch.
    pub batch_size: Arc<Histogram>,
    /// Queue-to-response latency per request, microseconds.
    pub latency_us: Arc<Histogram>,
    /// Time a request spent queued before its batch started scoring,
    /// microseconds.
    pub queue_wait_us: Arc<Histogram>,
    /// Forward-pass time per scored minibatch, microseconds.
    pub batch_compute_us: Arc<Histogram>,
    /// Response render + write time per request, microseconds.
    pub render_us: Arc<Histogram>,
    /// First request byte on the socket → request fully parsed, µs.
    pub stage_accept_us: Arc<Histogram>,
    /// Parsed job queued for dispatch → picked up by a worker, µs.
    pub stage_dispatch_wait_us: Arc<Histogram>,
    /// Response handed to the event loop → last byte flushed, µs.
    pub stage_write_us: Arc<Histogram>,
    /// Stream events accepted into a session window (`POST /ingest`).
    pub stream_events: Arc<Counter>,
    /// Stream events ignored for arriving behind their session's window.
    pub stream_events_stale: Arc<Counter>,
    /// `POST /ingest` requests dropped before touching any session
    /// (chaos/backpressure injection at the `stream.ingest.drop` site).
    pub stream_ingest_dropped: Arc<Counter>,
    /// Online scores computed by the streaming path.
    pub stream_scores: Arc<Counter>,
    /// Streaming sessions evicted (idle timeout, capacity, chaos or
    /// poisoning — sessions are ephemeral by design).
    pub stream_sessions_evicted: Arc<Counter>,
    /// Streaming sessions currently resident.
    pub stream_sessions_active: Arc<Gauge>,
    /// Event ingest → covering score completed, microseconds (score
    /// staleness: how old an event got before a score reflected it).
    pub stream_staleness_us: Arc<Histogram>,
    /// Cohort-index anchors probed with the full grid walk.
    pub stream_probes_full: Arc<Counter>,
    /// Cohort-index anchors answered from the incremental probe cache.
    pub stream_probes_reused: Arc<Counter>,
    /// Active kernel path, set once at server start: the SIMD backend name
    /// and whether the int8 quantized trunk is serving. Rendered as a
    /// `cohortnet_build_info` gauge with labels so fleet health checks can
    /// spot a replica silently running the fallback path.
    build_info: OnceLock<(&'static str, bool)>,
}

impl Metrics {
    /// Fresh zeroed metrics in a private registry.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Metrics {
            requests_total: registry.counter(
                "cohortnet_requests_total",
                "Scoring requests accepted into the queue.",
            ),
            responses_ok: registry.counter(
                "cohortnet_responses_ok_total",
                "Scoring requests answered successfully.",
            ),
            responses_err: registry.counter(
                "cohortnet_responses_err_total",
                "Scoring requests answered with an error.",
            ),
            batches_total: registry.counter(
                "cohortnet_batches_total",
                "Minibatches scored by the engine.",
            ),
            requests_rejected_deadline: registry.counter(
                "cohortnet_requests_rejected_deadline_total",
                "Requests rejected because they aged past the queue deadline.",
            ),
            engine_restarts: registry.counter(
                "cohortnet_engine_restarts_total",
                "Captured scoring panics that triggered an engine restart.",
            ),
            batch_rescues: registry.counter(
                "cohortnet_batch_rescues_total",
                "Minibatches rescued request-by-request after a captured panic.",
            ),
            rows_failed: registry.counter(
                "cohortnet_rows_failed_total",
                "Requests whose scoring panicked even in isolation.",
            ),
            conns_rejected: registry.counter(
                "cohortnet_conns_rejected_total",
                "Connections rejected at the connection limit.",
            ),
            conns_idle_closed: registry.counter(
                "cohortnet_conns_idle_closed_total",
                "Keep-alive connections closed by the idle timeout.",
            ),
            keepalive_requests: registry.counter(
                "cohortnet_keepalive_requests_total",
                "Requests served beyond the first on a keep-alive connection.",
            ),
            dispatch_rejected: registry.counter(
                "cohortnet_dispatch_rejected_total",
                "Requests answered 503 because the dispatch queue was full.",
            ),
            conns_active: registry.gauge("cohortnet_conns_active", "Connections currently open."),
            queue_depth: registry.gauge(
                "cohortnet_queue_depth",
                "Requests currently waiting in the engine queue.",
            ),
            batch_size: registry.histogram(
                "cohortnet_batch_size",
                "Requests coalesced per scored minibatch.",
                BATCH_SIZE_BOUNDS,
            ),
            latency_us: registry.histogram(
                "cohortnet_request_latency_us",
                "Queue-to-response latency per request, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            queue_wait_us: registry.histogram(
                "cohortnet_queue_wait_us",
                "Time queued before the batch started scoring, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            batch_compute_us: registry.histogram(
                "cohortnet_batch_compute_us",
                "Forward-pass time per scored minibatch, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            render_us: registry.histogram(
                "cohortnet_render_us",
                "Response render + write time per request, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            stage_accept_us: registry.histogram(
                "cohortnet_stage_accept_us",
                "First request byte to fully parsed, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            stage_dispatch_wait_us: registry.histogram(
                "cohortnet_stage_dispatch_wait_us",
                "Dispatch-queue wait before a worker picked the job up, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            stage_write_us: registry.histogram(
                "cohortnet_stage_write_us",
                "Response handed off until the last byte flushed, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            stream_events: registry.counter(
                "cohortnet_stream_events_total",
                "Stream events accepted into a session window.",
            ),
            stream_events_stale: registry.counter(
                "cohortnet_stream_events_stale_total",
                "Stream events ignored for arriving behind the window.",
            ),
            stream_ingest_dropped: registry.counter(
                "cohortnet_stream_ingest_dropped_total",
                "Ingest requests dropped before touching any session.",
            ),
            stream_scores: registry.counter(
                "cohortnet_stream_scores_total",
                "Online scores computed by the streaming path.",
            ),
            stream_sessions_evicted: registry.counter(
                "cohortnet_stream_sessions_evicted_total",
                "Streaming sessions evicted (idle, capacity, chaos, poison).",
            ),
            stream_sessions_active: registry.gauge(
                "cohortnet_stream_sessions_active",
                "Streaming sessions currently resident.",
            ),
            stream_staleness_us: registry.histogram(
                "cohortnet_stream_staleness_us",
                "Event ingest to covering score completion, microseconds.",
                LATENCY_US_BOUNDS,
            ),
            stream_probes_full: registry.counter(
                "cohortnet_stream_probes_full_total",
                "Cohort-index anchors probed with the full grid walk.",
            ),
            stream_probes_reused: registry.counter(
                "cohortnet_stream_probes_reused_total",
                "Cohort-index anchors answered from the incremental cache.",
            ),
            build_info: OnceLock::new(),
            registry,
        }
    }

    /// Records the kernel path this server scores with (first call wins).
    pub fn set_build_info(&self, simd_backend: &'static str, quant: bool) {
        let _ = self.build_info.set((simd_backend, quant));
    }

    /// Renders only this registry's families, each sample tagged with a
    /// `key="value"` label. The fleet router uses this to expose one
    /// registry per replica engine under a single `/metrics` endpoint
    /// (the global registry is appended once by the router, not per
    /// replica).
    pub fn render_labeled(&self, key: &str, value: &str) -> String {
        self.registry.render_labeled(key, value)
    }

    /// Renders the per-server registry followed by the process-wide
    /// [`cohortnet_obs::metrics::global`] registry (discovery + training
    /// families) in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        if let Some((simd, quant)) = self.build_info.get() {
            out.push_str("# HELP cohortnet_build_info Active kernel path (constant 1).\n");
            out.push_str("# TYPE cohortnet_build_info gauge\n");
            out.push_str(&format!(
                "cohortnet_build_info{{simd=\"{simd}\",quant=\"{}\"}} 1\n",
                if *quant { "on" } else { "off" }
            ));
        }
        out.push_str(&self.registry.render());
        out.push_str(&cohortnet_obs::metrics::global().render());
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1, 4, 16]);
        for v in [1, 1, 3, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.quantile(0.5), Some(4)); // 3rd of 5 lands in le=4
                                              // Overflow bucket clamps to the observed max, not u64::MAX.
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let m = Metrics::new();
        m.requests_total.add(3);
        m.batch_size.observe(1);
        m.batch_size.observe(2);
        let text = m.render_prometheus();
        assert!(text.contains("cohortnet_requests_total 3"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"2\"} 2"));
        assert!(text.contains("cohortnet_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cohortnet_batch_size_count 2"));
    }

    #[test]
    fn per_server_metrics_are_isolated() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.requests_total.add(5);
        assert_eq!(b.requests_total.get(), 0);
    }

    #[test]
    fn render_includes_global_registry() {
        let tag = "cohortnet_test_shim_global_total";
        cohortnet_obs::metrics::global()
            .counter(tag, "Shim render test marker.")
            .inc();
        let text = Metrics::new().render_prometheus();
        assert!(text.contains(tag), "{text}");
    }
}
