//! A dependency-free readiness reactor: the thin OS layer under the
//! server's event loop (and the open-loop load harness in
//! `cohortnet-bench`).
//!
//! [`Poller`] multiplexes readiness over many nonblocking sockets with one
//! of two backends behind a single API:
//!
//! * **epoll** (Linux, the default there) — O(ready) wakeups, scales to
//!   tens of thousands of registered connections;
//! * **poll(2)** (any Unix; forced with `COHORTNET_SERVE_BACKEND=poll`) —
//!   the portable fallback, O(registered) per wait, plenty for the same
//!   correctness semantics at moderate connection counts.
//!
//! Both are driven level-triggered: an event keeps firing while the
//! condition holds, so a handler that does not fully drain a socket is
//! re-woken instead of wedging the connection. No third-party crates are
//! involved: the two backends call the libc symbols (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `poll`, `close`) that Rust's std already
//! links on every Unix target.
//!
//! [`Waker`] is a self-pipe built on [`UnixStream::pair`]: worker threads
//! call [`Waker::wake`] to interrupt a blocked [`Poller::wait`] from
//! outside the loop (e.g. when a scored response is ready to write).

use std::io::{self, Read, Write};
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness conditions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// No conditions: stay registered but deliver nothing (used to apply
    /// backpressure to a connection while its request is in flight).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (data or EOF pending).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed or the socket errored (`EPOLLHUP`/`EPOLLERR`);
    /// delivered even when the registered interest is [`Interest::NONE`].
    pub closed: bool,
}

/// Reactor backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)`.
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    use std::os::raw::c_int;

    // On x86_64 the kernel ABI packs epoll_event (12 bytes); every other
    // architecture uses natural alignment (16 bytes).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
    }
}

mod sys_poll {
    use std::os::raw::{c_int, c_short, c_ulong};

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout_ms: c_int) -> c_int;
    }
}

extern "C" {
    fn close(fd: c_int) -> c_int;
}

/// Converts an optional wait budget into the millisecond argument both
/// backends take: `None` blocks forever; sub-millisecond budgets round up
/// so a short timeout never turns into a busy spin.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as c_int;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

/// A readiness multiplexer over nonblocking fds. See the module docs for
/// the backend split.
pub struct Poller {
    imp: Imp,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        buf: Vec<sys_epoll::EpollEvent>,
    },
    Poll {
        entries: Vec<(RawFd, u64, Interest)>,
    },
}

impl Poller {
    /// Opens a poller with the platform default backend (epoll on Linux,
    /// poll elsewhere). `COHORTNET_SERVE_BACKEND=poll` forces the portable
    /// fallback, which is how the test suite exercises both paths on one
    /// machine.
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let forced_poll = std::env::var("COHORTNET_SERVE_BACKEND")
            .map(|v| v.eq_ignore_ascii_case("poll"))
            .unwrap_or(false);
        if forced_poll {
            return Poller::with_backend(Backend::Poll);
        }
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// Opens a poller with an explicit backend.
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure; requesting [`Backend::Epoll`]
    /// off-Linux is [`io::ErrorKind::Unsupported`].
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
                    if epfd < 0 {
                        return Err(io::Error::last_os_error());
                    }
                    Ok(Poller {
                        imp: Imp::Epoll {
                            epfd,
                            buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; 1024],
                        },
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll backend requires Linux",
                    ))
                }
            }
            Backend::Poll => Ok(Poller {
                imp: Imp::Poll {
                    entries: Vec::new(),
                },
            }),
        }
    }

    /// The backend actually in use, for logs and `/healthz`.
    pub fn backend(&self) -> &'static str {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { .. } => "epoll",
            Imp::Poll { .. } => "poll",
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(interest: Interest) -> u32 {
        use sys_epoll::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};
        let mut mask = 0;
        if interest.read {
            // RDHUP rides read interest only: an Interest::NONE connection
            // (request in flight) must stay silent even if the peer
            // half-closes, or a level-triggered loop would spin on it.
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.write {
            mask |= EPOLLOUT;
        }
        mask
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        interest: Interest,
        token: u64,
    ) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::epoll_mask(interest),
            data: token,
        };
        let rc = unsafe { sys_epoll::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. an already registered fd).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, .. } => {
                Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_ADD, fd, interest, token)
            }
            Imp::Poll { entries } => {
                entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set of a registered fd.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure; unknown fds are
    /// [`io::ErrorKind::NotFound`] on the poll backend.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, .. } => {
                Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_MOD, fd, interest, token)
            }
            Imp::Poll { entries } => {
                for entry in entries.iter_mut() {
                    if entry.0 == fd {
                        entry.1 = token;
                        entry.2 = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Stops watching `fd`. Must run before the fd is closed on the poll
    /// backend (epoll drops closed fds on its own, but the poll fallback
    /// would report `POLLNVAL` forever).
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, .. } => {
                Self::epoll_ctl(*epfd, sys_epoll::EPOLL_CTL_DEL, fd, Interest::NONE, 0)
            }
            Imp::Poll { entries } => {
                entries.retain(|&(f, _, _)| f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or the timeout
    /// elapses, filling `out` with the ready set (`out` is cleared first;
    /// empty after a pure timeout). `EINTR` is retried internally.
    ///
    /// # Errors
    /// Propagates backend wait failures.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let budget = timeout_ms(timeout);
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, buf } => loop {
                let n = unsafe {
                    sys_epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as c_int, budget)
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for i in 0..n as usize {
                    let ev = buf[i];
                    let bits = ev.events;
                    out.push(Event {
                        token: ev.data,
                        readable: bits & (sys_epoll::EPOLLIN | sys_epoll::EPOLLRDHUP) != 0,
                        writable: bits & sys_epoll::EPOLLOUT != 0,
                        closed: bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0,
                    });
                }
                return Ok(());
            },
            Imp::Poll { entries } => {
                use sys_poll::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
                let mut fds: Vec<PollFd> = entries
                    .iter()
                    .map(|&(fd, _, interest)| PollFd {
                        fd,
                        events: if interest.read { POLLIN } else { 0 }
                            | if interest.write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                loop {
                    let n = unsafe {
                        sys_poll::poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, budget)
                    };
                    if n < 0 {
                        let err = io::Error::last_os_error();
                        if err.kind() == io::ErrorKind::Interrupted {
                            continue;
                        }
                        return Err(err);
                    }
                    break;
                }
                for (slot, &(_, token, _)) in fds.iter().zip(entries.iter()) {
                    let bits = slot.revents;
                    if bits == 0 {
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: bits & (POLLIN | POLLHUP) != 0,
                        writable: bits & POLLOUT != 0,
                        closed: bits & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, .. } => {
                let _ = unsafe { close(*epfd) };
            }
            Imp::Poll { .. } => {}
        }
    }
}

/// The wake-side handle of a self-pipe: any thread can interrupt the event
/// loop's [`Poller::wait`]. Cheap to share behind an `Arc`; a wake while a
/// previous wake is still pending coalesces (the pipe holds at most a few
/// bytes and `wake` ignores `WouldBlock`).
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Signals the paired [`WakeReceiver`]. Never blocks.
    pub fn wake(&self) {
        // A full pipe means a wake is already pending — mission accomplished.
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The loop-side handle of the self-pipe: register [`WakeReceiver::fd`]
/// for read interest and [`drain`](WakeReceiver::drain) it when it fires.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to register in the poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes all pending wake bytes so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Builds a connected [`Waker`]/[`WakeReceiver`] pair (both ends
/// nonblocking).
///
/// # Errors
/// Propagates socketpair construction failures.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

/// Best-effort raise of `RLIMIT_NOFILE` to at least `want` fds, returning
/// the effective soft limit afterwards. The open-loop load harness calls
/// this before opening thousands of sockets; on failure the caller scales
/// its connection count down to what the limit allows.
pub fn raise_nofile_limit(want: u64) -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;
    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    let raised = RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
        raised.cur
    } else {
        lim.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    /// A connected nonblocking TCP pair.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).expect("nonblocking");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn read_readiness_fires_after_peer_writes() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (client, server) = tcp_pair();
            poller
                .register(server.as_raw_fd(), 7, Interest::READ)
                .expect("register");
            let mut events = Vec::new();

            // Nothing pending: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "{backend:?}: spurious event {events:?}");

            (&client).write_all(b"x").expect("peer write");
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .expect("wait");
            assert_eq!(events.len(), 1, "{backend:?}: {events:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable, "{backend:?}: {events:?}");
        }
    }

    #[test]
    fn write_readiness_and_modify_and_deregister() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (_client, server) = tcp_pair();
            let fd = server.as_raw_fd();
            poller.register(fd, 1, Interest::WRITE).expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{backend:?}: fresh socket not writable: {events:?}"
            );

            // Interest::NONE silences the fd without deregistering it.
            poller.modify(fd, 1, Interest::NONE).expect("modify");
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(
                events.is_empty(),
                "{backend:?}: NONE still fired {events:?}"
            );

            poller.deregister(fd).expect("deregister");
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "{backend:?}: {events:?}");
        }
    }

    #[test]
    fn peer_hangup_is_delivered_as_closed_or_readable() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (client, server) = tcp_pair();
            poller
                .register(server.as_raw_fd(), 3, Interest::READ)
                .expect("register");
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .expect("wait");
            assert_eq!(events.len(), 1, "{backend:?}: {events:?}");
            assert!(
                events[0].readable || events[0].closed,
                "{backend:?}: hangup invisible: {events:?}"
            );
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (waker, wake_rx) = waker_pair().expect("waker pair");
            poller
                .register(wake_rx.fd(), 9, Interest::READ)
                .expect("register");
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
                waker
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 9 && e.readable),
                "{backend:?}: wake lost: {events:?}"
            );
            wake_rx.drain();
            // Coalesced double wake: drain leaves the pipe quiet.
            let waker = handle.join().expect("wake thread");
            waker.wake();
            waker.wake();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .expect("wait");
            assert!(!events.is_empty(), "{backend:?}: second wake lost");
            wake_rx.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "{backend:?}: drain incomplete");
        }
    }

    #[test]
    fn default_backend_matches_platform() {
        let poller = Poller::new().expect("poller");
        #[cfg(target_os = "linux")]
        assert_eq!(poller.backend(), "epoll");
        #[cfg(not(target_os = "linux"))]
        assert_eq!(poller.backend(), "poll");
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let lim = raise_nofile_limit(64);
        assert!(lim >= 64, "soft fd limit suspiciously low: {lim}");
    }
}
