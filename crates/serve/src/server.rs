//! The HTTP scoring server.
//!
//! Endpoints:
//!
//! * `POST /score` — body `{"instances": [{"x": [...], "mask": [...]}]}`;
//!   every instance is a standardized `T x F` grid (row-major) plus an `F`
//!   presence mask. Returns `{"predictions": [...]}` in input order.
//! * `POST /explain` — body is one instance; returns the paper's Fig. 9
//!   decomposition via [`cohortnet::interpret::explain_patient`]. `409`
//!   when the snapshot has no discovery artefacts.
//! * `GET /cohorts` — the discovered cohort pool (Table 2 data).
//! * `GET /healthz` — liveness plus model shape.
//! * `GET /metrics` — Prometheus text format.
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued work.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cohortnet::infer::ScoreRequest;
use cohortnet::interpret::explain_patient;
use cohortnet::snapshot::LoadedModel;
use cohortnet_models::data::{Prepared, PreparedPatient};
use cohortnet_obs::obs_info;

use crate::engine::{Engine, EngineConfig, EngineError, RowScore};
use crate::http::{read_request, write_json, write_response, HttpError, Request};
use crate::json::{self, num_arr, obj, Json};
use crate::metrics::Metrics;

/// Log target for request-lifecycle events.
const LOG: &str = "cohortnet.serve";

/// A process-unique request id: hex boot-time millis, then a sequence
/// number. Echoed to clients as `X-Request-Id` and attached to the
/// request log line, so a response can be joined to its server-side trace.
fn next_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    static BOOT_MS: OnceLock<u64> = OnceLock::new();
    let boot = BOOT_MS.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    });
    format!("{boot:x}-{:x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Per-connection read timeout in milliseconds (0 = the
    /// [`crate::http::DEFAULT_READ_TIMEOUT`] default). A client that stalls
    /// mid-request past this gets `408 Request Timeout` and its handler
    /// thread is released.
    pub read_timeout_ms: u64,
    /// Maximum simultaneously open connections (0 = unlimited). Connections
    /// beyond the limit are answered immediately with `503` +
    /// `Retry-After` instead of piling up handler threads.
    pub max_connections: usize,
    /// Batching knobs for the scoring engine.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 8080,
            read_timeout_ms: 0,
            max_connections: 256,
            engine: EngineConfig::default(),
        }
    }
}

struct AppState {
    engine: Engine,
    loaded: LoadedModel,
    metrics: Arc<Metrics>,
    stop: AtomicBool,
    read_timeout: Option<Duration>,
    max_connections: usize,
    active_conns: AtomicUsize,
}

/// Decrements the active-connection gauge when a handler thread finishes,
/// no matter how it exits.
struct ConnPermit<'a>(&'a AppState);

impl Drop for ConnPermit<'_> {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops the
/// accept loop, drains in-flight requests, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

/// Binds the listener, starts the engine and the accept loop, and returns
/// the running server.
///
/// # Errors
/// Propagates listener bind failures.
pub fn serve(loaded: LoadedModel, cfg: ServerConfig) -> std::io::Result<Server> {
    cohortnet_obs::init_from_env();
    cohortnet_chaos::init_from_env();
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let metrics = Arc::new(Metrics::new());
    let engine = Engine::start(loaded.inferencer(), cfg.engine, Arc::clone(&metrics));
    let state = Arc::new(AppState {
        engine,
        loaded,
        metrics,
        stop: AtomicBool::new(false),
        read_timeout: if cfg.read_timeout_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(cfg.read_timeout_ms))
        },
        max_connections: cfg.max_connections,
        active_conns: AtomicUsize::new(0),
    });

    let loop_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("cohortnet-accept".into())
        .spawn(move || accept_loop(&listener, &loop_state))
        .expect("spawn accept thread");

    Ok(Server {
        addr,
        state,
        accept: Mutex::new(Some(accept)),
    })
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and blocks until the accept loop, all
    /// handler threads, and the engine have finished. Idempotent.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = handle.join();
        }
        self.state.engine.shutdown();
    }

    /// Blocks until the server stops (via `POST /shutdown` or
    /// [`Server::shutdown`] from another thread).
    pub fn join(&self) {
        if let Some(handle) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = handle.join();
        }
        self.state.engine.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<AppState>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Connection-limit gate: answer over-limit connections
                // immediately with a retryable 503 instead of letting
                // handler threads (each potentially holding a stalled
                // client for the full read timeout) grow without bound.
                if state.max_connections > 0
                    && state.active_conns.load(Ordering::SeqCst) >= state.max_connections
                {
                    state.metrics.conns_rejected.inc();
                    let _ = write_json(
                        &mut stream,
                        503,
                        &error_body("connection limit reached, retry later"),
                        &[("Retry-After", "1")],
                    );
                    continue;
                }
                state.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("cohortnet-conn".into())
                    .spawn(move || {
                        let permit = ConnPermit(&conn_state);
                        handle_connection(stream, &conn_state);
                        drop(permit);
                    })
                    .expect("spawn connection thread");
                handlers.push(handle);
                // Reap finished handlers so long-lived servers don't
                // accumulate join handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<AppState>) {
    let rid = next_request_id();
    let rid_header: [(&str, &str); 1] = [("X-Request-Id", rid.as_str())];
    let t0 = Instant::now();
    let mut req_span = cohortnet_obs::span::span("serve.request");
    req_span.arg("request_id", &rid);
    let req = match read_request(&mut stream, state.read_timeout) {
        Ok(req) => req,
        Err(HttpError::TooLarge) => {
            let _ = write_json(
                &mut stream,
                413,
                &error_body("request too large"),
                &rid_header,
            );
            return;
        }
        Err(HttpError::Timeout) => {
            let _ = write_json(
                &mut stream,
                408,
                &error_body(&HttpError::Timeout.to_string()),
                &rid_header,
            );
            return;
        }
        Err(e) => {
            let _ = write_json(&mut stream, 400, &error_body(&e.to_string()), &rid_header);
            return;
        }
    };
    req_span.arg("method", &req.method).arg("path", &req.path);
    let (status, content_type, body) = route(&req, state);
    // Backpressure statuses carry Retry-After so well-behaved clients back
    // off instead of hammering a saturated queue.
    let retry_headers: [(&str, &str); 2] = [("X-Request-Id", rid.as_str()), ("Retry-After", "1")];
    let headers: &[(&str, &str)] = if status == 429 || status == 503 {
        &retry_headers
    } else {
        &rid_header
    };
    let render_t0 = Instant::now();
    let _ = write_response(&mut stream, status, content_type, &body, headers);
    state
        .metrics
        .render_us
        .observe(render_t0.elapsed().as_micros() as u64);
    req_span.arg("status", status);
    obs_info!(
        target: LOG,
        "request",
        request_id = rid,
        method = req.method,
        path = req.path,
        status = status,
        dur_us = t0.elapsed().as_micros(),
    );
}

fn error_body(message: &str) -> String {
    json::render(&obj(vec![("error", Json::Str(message.to_string()))]))
}

fn route(req: &Request, state: &Arc<AppState>) -> (u16, &'static str, String) {
    const JSON_CT: &str = "application/json";
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/score") => handle_score(req, state),
        ("POST", "/explain") => handle_explain(req, state),
        ("GET", "/cohorts") => (200, JSON_CT, cohorts_body(state)),
        ("GET", "/healthz") => (200, JSON_CT, healthz_body(state)),
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4",
            state.metrics.render_prometheus(),
        ),
        ("POST", "/shutdown") => {
            state.stop.store(true, Ordering::SeqCst);
            (200, JSON_CT, error_body_ok())
        }
        (_, "/score" | "/explain" | "/shutdown") => {
            (405, JSON_CT, error_body("use POST for this endpoint"))
        }
        (_, "/cohorts" | "/healthz" | "/metrics") => {
            (405, JSON_CT, error_body("use GET for this endpoint"))
        }
        _ => (404, JSON_CT, error_body("unknown endpoint")),
    }
}

fn error_body_ok() -> String {
    json::render(&obj(vec![("status", Json::Str("shutting down".into()))]))
}

/// Decodes one `{"x": [...], "mask": [...]}` instance.
fn parse_instance(value: &Json) -> Result<ScoreRequest, String> {
    let x = value
        .get("x")
        .and_then(Json::as_f32_vec)
        .ok_or("instance needs a numeric array field \"x\"")?;
    let mask = value
        .get("mask")
        .and_then(Json::as_f32_vec)
        .ok_or("instance needs a numeric array field \"mask\"")?;
    Ok(ScoreRequest { x, mask })
}

fn row_to_json(row: &RowScore) -> Json {
    let mut pairs = vec![
        ("prob", num_arr(&row.prob)),
        ("logit", num_arr(&row.logit)),
        ("base_logit", num_arr(&row.base_logit)),
    ];
    if let Some(cem) = &row.cem_logit {
        pairs.push(("cem_logit", num_arr(cem)));
    }
    obj(pairs)
}

fn handle_score(req: &Request, state: &Arc<AppState>) -> (u16, &'static str, String) {
    const JSON_CT: &str = "application/json";
    let parsed = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, JSON_CT, error_body(&format!("invalid json: {e}"))),
    };
    let Some(instances) = parsed.get("instances").and_then(Json::as_arr) else {
        return (
            400,
            JSON_CT,
            error_body("body needs an array field \"instances\""),
        );
    };
    if instances.is_empty() {
        return (400, JSON_CT, error_body("\"instances\" is empty"));
    }
    let mut reqs = Vec::with_capacity(instances.len());
    for (i, inst) in instances.iter().enumerate() {
        match parse_instance(inst) {
            Ok(r) => reqs.push(r),
            Err(why) => {
                return (400, JSON_CT, error_body(&format!("instance {i}: {why}")));
            }
        }
    }
    match state.engine.score_many(reqs) {
        Ok(rows) => {
            // Per-request isolation: each prediction slot carries either a
            // score or that request's own error, in input order. The batch
            // status reflects the worst case only when nothing succeeded.
            let any_ok = rows.iter().any(Result::is_ok);
            let all_bad_request = rows
                .iter()
                .all(|r| matches!(r, Err(EngineError::BadRequest(_))));
            let all_deadline = rows
                .iter()
                .all(|r| matches!(r, Err(EngineError::DeadlineExceeded)));
            let status = if any_ok {
                200
            } else if all_bad_request {
                400
            } else if all_deadline {
                429
            } else {
                500
            };
            let predictions = Json::Arr(
                rows.iter()
                    .map(|row| match row {
                        Ok(score) => row_to_json(score),
                        Err(e) => obj(vec![("error", Json::Str(e.to_string()))]),
                    })
                    .collect(),
            );
            (
                status,
                JSON_CT,
                json::render(&obj(vec![("predictions", predictions)])),
            )
        }
        Err(EngineError::Overloaded) => (
            503,
            JSON_CT,
            error_body(&EngineError::Overloaded.to_string()),
        ),
        Err(e) => (503, JSON_CT, error_body(&e.to_string())),
    }
}

fn handle_explain(req: &Request, state: &Arc<AppState>) -> (u16, &'static str, String) {
    const JSON_CT: &str = "application/json";
    if state.loaded.model.discovery.is_none() {
        return (
            409,
            JSON_CT,
            error_body("snapshot has no discovery artefacts; /explain needs a trained pool"),
        );
    }
    let parsed = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, JSON_CT, error_body(&format!("invalid json: {e}"))),
    };
    let score_req = match parse_instance(&parsed) {
        Ok(r) => r,
        Err(why) => return (400, JSON_CT, error_body(why.as_str())),
    };
    let inf = state.engine.inferencer();
    let (nf, t_steps, nl) = (inf.n_features(), inf.time_steps(), inf.n_labels());
    if score_req.x.len() != t_steps * nf || score_req.mask.len() != nf {
        return (
            400,
            JSON_CT,
            error_body(&format!(
                "instance shapes must be x: {} (= {t_steps} x {nf}), mask: {nf}",
                t_steps * nf
            )),
        );
    }
    // explain_patient works on a prepared dataset; wrap the single instance
    // as a one-patient dataset with dummy labels (labels are unused by the
    // explanation itself).
    let prep = Prepared {
        n_features: nf,
        time_steps: t_steps,
        n_labels: nl,
        patients: vec![PreparedPatient {
            x: score_req.x,
            mask: score_req.mask,
            labels: vec![0.0; nl],
            labels_u8: vec![0; nl],
        }],
    };
    let exp = explain_patient(&state.loaded.model, &state.loaded.params, &prep, 0);
    let cohorts = Json::Arr(
        exp.cohorts
            .iter()
            .map(|c| {
                obj(vec![
                    ("feature", Json::Num(c.feature as f64)),
                    ("cohort", Json::Num(c.cohort as f64)),
                    ("beta", Json::Num(f64::from(c.beta))),
                    ("score", Json::Num(f64::from(c.score))),
                    (
                        "matched_steps",
                        Json::Arr(
                            c.matched_steps
                                .iter()
                                .map(|&t| Json::Num(t as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let attention = Json::Arr(
        exp.attention
            .iter()
            .map(|m| Json::Arr((0..m.rows()).map(|r| num_arr(m.row(r))).collect()))
            .collect(),
    );
    let body = obj(vec![
        ("base_prob", num_arr(&exp.base_prob)),
        ("full_prob", num_arr(&exp.full_prob)),
        ("feature_scores", num_arr(&exp.feature_scores)),
        ("cohorts", cohorts),
        ("attention", attention),
    ]);
    (200, JSON_CT, json::render(&body))
}

fn healthz_body(state: &Arc<AppState>) -> String {
    let inf = state.engine.inferencer();
    let cfg = state.engine.config();
    json::render(&obj(vec![
        ("status", Json::Str("ok".into())),
        (
            "snapshot_version",
            Json::Str(cohortnet::snapshot::SNAPSHOT_VERSION.into()),
        ),
        ("n_features", Json::Num(inf.n_features() as f64)),
        ("time_steps", Json::Num(inf.time_steps() as f64)),
        ("n_labels", Json::Num(inf.n_labels() as f64)),
        ("has_cohorts", Json::Bool(inf.has_cohorts())),
        ("max_batch", Json::Num(cfg.max_batch as f64)),
        ("max_delay_us", Json::Num(cfg.max_delay_us as f64)),
        ("deadline_ms", Json::Num(cfg.deadline_ms as f64)),
        (
            "read_timeout_ms",
            Json::Num(
                state
                    .read_timeout
                    .unwrap_or(crate::http::DEFAULT_READ_TIMEOUT)
                    .as_millis() as f64,
            ),
        ),
    ]))
}

fn cohorts_body(state: &Arc<AppState>) -> String {
    let Some(d) = state.loaded.model.discovery.as_ref() else {
        return json::render(&obj(vec![
            ("has_cohorts", Json::Bool(false)),
            ("features", Json::Arr(Vec::new())),
        ]));
    };
    let pool = &d.pool;
    let features = Json::Arr(
        pool.per_feature
            .iter()
            .enumerate()
            .map(|(i, cohorts)| {
                let mask = Json::Arr(pool.masks[i].iter().map(|&f| Json::Num(f as f64)).collect());
                let rows = Json::Arr(
                    cohorts
                        .iter()
                        .enumerate()
                        .map(|(q, c)| {
                            let pattern = Json::Arr(
                                c.pattern
                                    .iter()
                                    .map(|&(f, s)| {
                                        Json::Arr(vec![
                                            Json::Num(f as f64),
                                            Json::Num(f64::from(s)),
                                        ])
                                    })
                                    .collect(),
                            );
                            obj(vec![
                                ("cohort", Json::Num(q as f64)),
                                ("pattern", pattern),
                                ("frequency", Json::Num(c.frequency as f64)),
                                ("n_patients", Json::Num(c.n_patients as f64)),
                                ("pos_rate", num_arr(&c.pos_rate)),
                            ])
                        })
                        .collect(),
                );
                obj(vec![
                    ("feature", Json::Num(i as f64)),
                    ("mask", mask),
                    ("cohorts", rows),
                ])
            })
            .collect(),
    );
    json::render(&obj(vec![
        ("has_cohorts", Json::Bool(true)),
        ("features", features),
    ]))
}
