//! The HTTP scoring server.
//!
//! Endpoints:
//!
//! * `POST /score` — body `{"instances": [{"x": [...], "mask": [...]}]}`;
//!   every instance is a standardized `T x F` grid (row-major) plus an `F`
//!   presence mask. Returns `{"predictions": [...]}` in input order.
//! * `POST /explain` — body is one instance; returns the paper's Fig. 9
//!   decomposition via [`cohortnet::interpret::explain_patient`]. `409`
//!   when the snapshot has no discovery artefacts.
//! * `GET /cohorts` — the discovered cohort pool (Table 2 data).
//! * `GET /healthz` — liveness, model shape and the snapshot fingerprint.
//! * `GET /metrics` — Prometheus text format.
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued work.
//!
//! The transport is a single-threaded readiness event loop
//! ([`crate::eventloop`]) over the dependency-free [`crate::reactor`]
//! (epoll on Linux, poll elsewhere): nonblocking accept, per-connection
//! state machines, HTTP/1.1 keep-alive with an idle timeout, and an exact
//! `max_connections` bound whose over-limit `503`s can never block the
//! accept path. Complete requests are handed to a small worker pool that
//! runs the blocking application ([`App`]) and posts rendered responses
//! back to the loop.
//!
//! The transport and the application are split along the [`App`] trait:
//! [`serve`] wires the single-model scoring app ([`ScoreApp`], private)
//! into [`serve_app`], and the `cohortnet-fleet` crate wires a
//! multi-replica router into the very same transport — same event loop,
//! same keep-alive/drain semantics, different routing.

use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use cohortnet::infer::{Inferencer, ScoreRequest};
use cohortnet::interpret::explain_patient;
use cohortnet::snapshot::LoadedModel;
use cohortnet_models::data::{Prepared, PreparedPatient};
use cohortnet_obs::flight::{FlightRecord, FlightRecorder, FLIGHT_SLOTS};

use crate::engine::{Engine, EngineConfig, EngineError, RowScore};
use crate::eventloop::{self, ConnLimiter, Done, JobQueue};
use crate::http::{query_param, Request};
use crate::json::{self, num_arr, obj, Json};
use crate::metrics::Metrics;
use crate::reactor::{waker_pair, Interest, Poller, Waker};

/// Log target for request-lifecycle events.
pub(crate) const LOG: &str = "cohortnet.serve";

/// The JSON content type every structured endpoint answers with.
pub const JSON_CT: &str = "application/json";

/// A process-unique request id: hex boot-time millis, then a sequence
/// number. Echoed to clients as `X-Request-Id` and attached to the
/// request log line, so a response can be joined to its server-side trace.
pub(crate) fn next_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    static BOOT_MS: OnceLock<u64> = OnceLock::new();
    let boot = BOOT_MS.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    });
    format!("{boot:x}-{:x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Default idle-connection timeout when [`TransportConfig::idle_timeout_ms`]
/// is 0: how long a keep-alive connection may sit between requests before
/// the server closes it silently.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default worker-pool size when [`TransportConfig::workers`] is 0. Workers
/// block in the engine while their batch scores, so the pool is sized well
/// past the core count — it bounds concurrent *requests being routed*, not
/// CPU use (the engine's own `threads` knob governs that).
pub const DEFAULT_WORKERS: usize = 16;

/// Transport-level configuration: everything the event loop needs, nothing
/// the application does. [`ServerConfig`] embeds one implicitly; the fleet
/// router passes one to [`serve_app`] directly.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Per-connection read timeout in milliseconds (0 = the
    /// [`crate::http::DEFAULT_READ_TIMEOUT`] default). A client that stalls
    /// mid-request past this gets `408 Request Timeout`.
    pub read_timeout_ms: u64,
    /// Idle keep-alive timeout in milliseconds (0 = the
    /// [`DEFAULT_IDLE_TIMEOUT`] default). A connection with no request in
    /// progress for this long is closed without a response.
    pub idle_timeout_ms: u64,
    /// Maximum simultaneously open connections (0 = unlimited), enforced
    /// exactly at the event loop. Connections beyond the limit are answered
    /// with `503` + `Retry-After` on their own nonblocking state machine.
    pub max_connections: usize,
    /// Request worker threads between the event loop and the application
    /// (0 = [`DEFAULT_WORKERS`]). Bounds concurrently routed requests; the
    /// dispatch queue holds `8 x workers` more before answering `503`.
    pub workers: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            port: 8080,
            read_timeout_ms: 0,
            idle_timeout_ms: 0,
            max_connections: 256,
            workers: 0,
        }
    }
}

impl TransportConfig {
    /// The read timeout with the built-in default applied.
    pub(crate) fn effective_read_timeout(&self) -> Duration {
        if self.read_timeout_ms == 0 {
            crate::http::DEFAULT_READ_TIMEOUT
        } else {
            Duration::from_millis(self.read_timeout_ms)
        }
    }

    /// The idle timeout with the built-in default applied.
    pub(crate) fn effective_idle_timeout(&self) -> Duration {
        if self.idle_timeout_ms == 0 {
            DEFAULT_IDLE_TIMEOUT
        } else {
            Duration::from_millis(self.idle_timeout_ms)
        }
    }

    /// The worker-pool size with the built-in default applied.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            DEFAULT_WORKERS
        } else {
            self.workers
        }
    }
}

/// Server configuration for the single-model scoring server ([`serve`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// See [`TransportConfig::read_timeout_ms`].
    pub read_timeout_ms: u64,
    /// See [`TransportConfig::idle_timeout_ms`].
    pub idle_timeout_ms: u64,
    /// See [`TransportConfig::max_connections`].
    pub max_connections: usize,
    /// See [`TransportConfig::workers`].
    pub workers: usize,
    /// Batching knobs for the scoring engine.
    pub engine: EngineConfig,
    /// Score through the int8 quantized trunk ([`cohortnet::quant`])
    /// instead of the bit-identical-to-training f32 path.
    pub quant: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 8080,
            read_timeout_ms: 0,
            idle_timeout_ms: 0,
            max_connections: 256,
            workers: 0,
            engine: EngineConfig::default(),
            quant: false,
        }
    }
}

impl ServerConfig {
    /// The transport slice of this configuration.
    pub fn transport(&self) -> TransportConfig {
        TransportConfig {
            port: self.port,
            read_timeout_ms: self.read_timeout_ms,
            idle_timeout_ms: self.idle_timeout_ms,
            max_connections: self.max_connections,
            workers: self.workers,
        }
    }
}

/// A rendered application response, before HTTP framing.
#[derive(Debug, Clone)]
pub struct AppResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Server-initiated close: the connection is closed after this
    /// response even if the client asked for keep-alive (ORed with the
    /// client's own `Connection: close`).
    pub close: bool,
}

impl AppResponse {
    /// A JSON response that keeps the connection open.
    pub fn json(status: u16, body: String) -> Self {
        AppResponse {
            status,
            content_type: JSON_CT,
            body,
            close: false,
        }
    }

    /// Marks the response as connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

/// Transport controls handed to [`App::handle`]: an application may ask
/// the transport to stop (the `POST /shutdown` path) and may read its
/// flight recorder (the `/debug/requests` path).
pub struct ServerCtl<'a> {
    stop: &'a AtomicBool,
    waker: &'a Waker,
    flight: &'a FlightRecorder,
}

impl ServerCtl<'_> {
    pub(crate) fn new(state: &AppState) -> ServerCtl<'_> {
        ServerCtl {
            stop: &state.stop,
            waker: &state.waker,
            flight: &state.flight,
        }
    }

    /// Requests a graceful stop: the event loop stops accepting, finishes
    /// in-flight work, and drains — same semantics as [`Server::shutdown`].
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// The transport's flight recorder: the last [`FLIGHT_SLOTS`] completed
    /// requests with per-stage timings, written by the event loop.
    pub fn flight(&self) -> &FlightRecorder {
        self.flight
    }
}

/// What the transport asks of an application: route one parsed request to
/// a response. Implemented by this crate's single-model scoring app (via
/// [`serve`]) and by the `cohortnet-fleet` multi-replica router — both run
/// behind the identical event-loop transport through [`serve_app`].
///
/// `handle` runs on a worker thread and may block (the scoring engine
/// does); the event loop itself never calls it.
pub trait App: Send + Sync + 'static {
    /// Routes one request. `ctl` lets a shutdown endpoint stop the
    /// transport.
    fn handle(&self, req: &Request, ctl: &ServerCtl<'_>) -> AppResponse;

    /// Called exactly once after the event loop and the worker pool have
    /// drained and joined (from [`Server::shutdown`]/[`Server::join`]):
    /// shut down engines and other blocking resources here.
    fn on_drained(&self) {}
}

pub(crate) struct AppState {
    pub(crate) app: Arc<dyn App>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) stop: AtomicBool,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) idle_timeout: Duration,
    pub(crate) limiter: ConnLimiter,
    pub(crate) jobs: JobQueue,
    pub(crate) completions: Mutex<Vec<Done>>,
    pub(crate) waker: Waker,
    /// Always-on ring of the last completed requests (see
    /// [`cohortnet_obs::flight`]); written by the event loop when a
    /// response's last byte flushes, read by `/debug/requests`.
    pub(crate) flight: Arc<FlightRecorder>,
    /// Set by the event loop on exit (all paths); `Server::finish` waits on
    /// it so `join`/`shutdown` share one stop routine.
    pub(crate) done: (Mutex<bool>, Condvar),
    pub(crate) worker_count: usize,
}

impl AppState {
    pub(crate) fn effective_read_timeout(&self) -> Duration {
        self.read_timeout
            .unwrap_or(crate::http::DEFAULT_READ_TIMEOUT)
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops the
/// event loop, drains in-flight requests, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    eventloop: Mutex<Option<JoinHandle<()>>>,
}

/// Binds the listener and runs an arbitrary [`App`] behind the event-loop
/// transport. `metrics` receives the transport-level families (connection
/// and dispatch counters); the app renders `/metrics` itself, so pass the
/// same instance there when the two should share one registry.
///
/// # Errors
/// Propagates listener bind and reactor setup failures.
pub fn serve_app(
    app: Arc<dyn App>,
    cfg: TransportConfig,
    metrics: Arc<Metrics>,
) -> std::io::Result<Server> {
    cohortnet_obs::init_from_env();
    cohortnet_chaos::init_from_env();
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers = cfg.effective_workers();
    let (waker, wake_rx) = waker_pair()?;
    let mut poller = Poller::new()?;
    poller.register(
        listener.as_raw_fd(),
        eventloop::TOKEN_LISTENER,
        Interest::READ,
    )?;
    poller.register(wake_rx.fd(), eventloop::TOKEN_WAKER, Interest::READ)?;

    let state = Arc::new(AppState {
        app,
        metrics,
        stop: AtomicBool::new(false),
        read_timeout: if cfg.read_timeout_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(cfg.read_timeout_ms))
        },
        idle_timeout: cfg.effective_idle_timeout(),
        limiter: ConnLimiter::new(cfg.max_connections),
        jobs: JobQueue::new(workers * 8),
        completions: Mutex::new(Vec::new()),
        waker,
        flight: Arc::new(FlightRecorder::new()),
        done: (Mutex::new(false), Condvar::new()),
        worker_count: workers,
    });

    let loop_state = Arc::clone(&state);
    let handle = std::thread::Builder::new()
        .name("cohortnet-eventloop".into())
        .spawn(move || eventloop::run(listener, poller, wake_rx, loop_state))
        .expect("spawn event loop thread");

    Ok(Server {
        addr,
        state,
        eventloop: Mutex::new(Some(handle)),
    })
}

/// Binds the listener, starts the engine, the worker pool and the event
/// loop, and returns the running single-model scoring server.
///
/// # Errors
/// Propagates listener bind and reactor setup failures.
pub fn serve(loaded: LoadedModel, cfg: ServerConfig) -> std::io::Result<Server> {
    let (app, metrics) = ScoreApp::build(loaded, &cfg);
    serve_app(Arc::new(app), cfg.transport(), metrics)
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The one stop routine both [`Server::shutdown`] and [`Server::join`]
    /// funnel through: wait for the event loop to finish draining (it sets
    /// the done flag on every exit path), join its thread, then let the
    /// application shut its engines down. Idempotent and safe to race from
    /// several threads.
    fn finish(&self) {
        let (lock, cv) = &self.state.done;
        let mut done = lock.lock().expect("done flag poisoned");
        while !*done {
            done = cv.wait(done).expect("done flag poisoned");
        }
        drop(done);
        if let Some(handle) = self
            .eventloop
            .lock()
            .expect("event loop handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        self.state.app.on_drained();
    }

    /// Requests a graceful stop and blocks until the event loop, the worker
    /// pool, and the engine have finished. Idempotent.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.waker.wake();
        self.finish();
    }

    /// Blocks until the server stops (via `POST /shutdown` or
    /// [`Server::shutdown`] from another thread), then completes the same
    /// drain ordering as [`Server::shutdown`].
    pub fn join(&self) {
        self.finish();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Renders the standard `{"error": message}` body.
pub fn error_body(message: &str) -> String {
    json::render(&obj(vec![("error", Json::Str(message.to_string()))]))
}

/// The single-model scoring application behind [`serve`]. Also the
/// delegation target of the streaming app ([`crate::stream`]), which
/// answers its own `/ingest` + `/sessions` routes and hands everything
/// else here — so both servers expose the identical batch surface.
pub(crate) struct ScoreApp {
    pub(crate) engine: Engine,
    pub(crate) loaded: LoadedModel,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) read_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) workers: usize,
}

impl ScoreApp {
    /// Starts the engine and assembles the app plus its metrics registry —
    /// the shared plumbing of [`serve`] and [`crate::stream::serve_stream`].
    pub(crate) fn build(loaded: LoadedModel, cfg: &ServerConfig) -> (ScoreApp, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let engine =
            Engine::start_scorer(loaded.scorer(cfg.quant), cfg.engine, Arc::clone(&metrics));
        metrics.set_build_info(cohortnet_tensor::simd::active().name(), cfg.quant);
        let transport = cfg.transport();
        let app = ScoreApp {
            engine,
            loaded,
            metrics: Arc::clone(&metrics),
            read_timeout: transport.effective_read_timeout(),
            idle_timeout: transport.effective_idle_timeout(),
            workers: transport.effective_workers(),
        };
        (app, metrics)
    }
}

impl App for ScoreApp {
    fn handle(&self, req: &Request, ctl: &ServerCtl<'_>) -> AppResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/score") => {
                let (status, body) = self.handle_score(req);
                AppResponse::json(status, body)
            }
            ("POST", "/explain") => {
                let (status, body) =
                    explain_response(&self.loaded, self.engine.inferencer(), &req.body);
                AppResponse::json(status, body)
            }
            ("GET", "/cohorts") => AppResponse::json(200, cohorts_json(&self.loaded)),
            ("GET", "/healthz") => AppResponse::json(200, self.healthz_body()),
            ("GET", "/debug/requests") => {
                AppResponse::json(200, debug_requests_body(ctl.flight(), &req.query))
            }
            ("GET", "/debug/config") => AppResponse::json(200, self.debug_config_body(ctl)),
            ("GET", "/debug/trace") => AppResponse::json(200, debug_trace_body(&req.query)),
            ("GET", "/metrics") => AppResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: self.metrics.render_prometheus(),
                close: false,
            },
            ("POST", "/shutdown") => {
                // `/shutdown` always closes: the loop is about to drain
                // anyway, and promising keep-alive on a dying connection
                // helps nobody.
                ctl.request_stop();
                AppResponse::json(200, shutdown_body()).closing()
            }
            (_, "/score" | "/explain" | "/shutdown") => {
                AppResponse::json(405, error_body("use POST for this endpoint"))
            }
            (
                _,
                "/cohorts" | "/healthz" | "/metrics" | "/debug/requests" | "/debug/config"
                | "/debug/trace",
            ) => AppResponse::json(405, error_body("use GET for this endpoint")),
            _ => AppResponse::json(404, error_body("unknown endpoint")),
        }
    }

    fn on_drained(&self) {
        self.engine.shutdown();
    }
}

/// The `{"status": "shutting down"}` body `POST /shutdown` answers with.
pub fn shutdown_body() -> String {
    json::render(&obj(vec![("status", Json::Str("shutting down".into()))]))
}

/// Decodes one `{"x": [...], "mask": [...]}` instance.
fn parse_instance(value: &Json) -> Result<ScoreRequest, String> {
    let x = value
        .get("x")
        .and_then(Json::as_f32_vec)
        .ok_or("instance needs a numeric array field \"x\"")?;
    let mask = value
        .get("mask")
        .and_then(Json::as_f32_vec)
        .ok_or("instance needs a numeric array field \"mask\"")?;
    Ok(ScoreRequest { x, mask })
}

/// Decodes a `/score` body into its instances.
///
/// # Errors
/// A human-readable message for the `400` response.
pub fn parse_score_instances(body: &str) -> Result<Vec<ScoreRequest>, String> {
    let parsed = json::parse(body).map_err(|e| format!("invalid json: {e}"))?;
    let Some(instances) = parsed.get("instances").and_then(Json::as_arr) else {
        return Err("body needs an array field \"instances\"".into());
    };
    if instances.is_empty() {
        return Err("\"instances\" is empty".into());
    }
    let mut reqs = Vec::with_capacity(instances.len());
    for (i, inst) in instances.iter().enumerate() {
        match parse_instance(inst) {
            Ok(r) => reqs.push(r),
            Err(why) => return Err(format!("instance {i}: {why}")),
        }
    }
    Ok(reqs)
}

pub(crate) fn row_to_json(row: &RowScore) -> Json {
    let mut pairs = vec![
        ("prob", num_arr(&row.prob)),
        ("logit", num_arr(&row.logit)),
        ("base_logit", num_arr(&row.base_logit)),
    ];
    if let Some(cem) = &row.cem_logit {
        pairs.push(("cem_logit", num_arr(cem)));
    }
    obj(pairs)
}

/// Renders the `/score` response for a scored batch: per-request isolation
/// means each prediction slot carries either a score or that request's own
/// error, in input order; the batch status reflects the worst case only
/// when nothing succeeded. Shared verbatim by the single-model server and
/// the fleet router, which is what makes their response bytes comparable
/// bit for bit.
pub fn score_rows_response(rows: &[Result<RowScore, EngineError>]) -> (u16, String) {
    let any_ok = rows.iter().any(Result::is_ok);
    let all_bad_request = rows
        .iter()
        .all(|r| matches!(r, Err(EngineError::BadRequest(_))));
    let all_deadline = rows
        .iter()
        .all(|r| matches!(r, Err(EngineError::DeadlineExceeded)));
    let status = if any_ok {
        200
    } else if all_bad_request {
        400
    } else if all_deadline {
        429
    } else {
        500
    };
    let predictions = Json::Arr(
        rows.iter()
            .map(|row| match row {
                Ok(score) => row_to_json(score),
                Err(e) => obj(vec![("error", Json::Str(e.to_string()))]),
            })
            .collect(),
    );
    (
        status,
        json::render(&obj(vec![("predictions", predictions)])),
    )
}

impl ScoreApp {
    fn handle_score(&self, req: &Request) -> (u16, String) {
        let reqs = match parse_score_instances(&req.body) {
            Ok(reqs) => reqs,
            Err(why) => return (400, error_body(&why)),
        };
        match self.engine.score_many(reqs) {
            Ok(rows) => score_rows_response(&rows),
            Err(e) => (503, error_body(&e.to_string())),
        }
    }

    fn healthz_body(&self) -> String {
        let inf = self.engine.inferencer();
        let cfg = self.engine.config();
        json::render(&obj(vec![
            ("status", Json::Str("ok".into())),
            (
                "snapshot_version",
                Json::Str(cohortnet::snapshot::SNAPSHOT_VERSION.into()),
            ),
            (
                "snapshot_fingerprint",
                Json::Str(self.loaded.fingerprint_hex()),
            ),
            ("n_features", Json::Num(inf.n_features() as f64)),
            ("time_steps", Json::Num(inf.time_steps() as f64)),
            ("n_labels", Json::Num(inf.n_labels() as f64)),
            ("has_cohorts", Json::Bool(inf.has_cohorts())),
            (
                "simd_backend",
                Json::Str(cohortnet_tensor::simd::active().name().into()),
            ),
            ("quant", Json::Bool(self.engine.quantized())),
            ("max_batch", Json::Num(cfg.max_batch as f64)),
            ("max_delay_us", Json::Num(cfg.max_delay_us as f64)),
            ("deadline_ms", Json::Num(cfg.deadline_ms as f64)),
            (
                "read_timeout_ms",
                Json::Num(self.read_timeout.as_millis() as f64),
            ),
            (
                "idle_timeout_ms",
                Json::Num(self.idle_timeout.as_millis() as f64),
            ),
            ("workers", Json::Num(self.workers as f64)),
        ]))
    }

    /// The `GET /debug/config` body: every resolved knob the server is
    /// actually running with, plus the snapshot fingerprint, kernel path
    /// and observability state — one curl for "what is this process?".
    fn debug_config_body(&self, ctl: &ServerCtl<'_>) -> String {
        let cfg = self.engine.config();
        json::render(&obj(vec![
            (
                "snapshot_fingerprint",
                Json::Str(self.loaded.fingerprint_hex()),
            ),
            (
                "simd_backend",
                Json::Str(cohortnet_tensor::simd::active().name().into()),
            ),
            ("quant", Json::Bool(self.engine.quantized())),
            ("max_batch", Json::Num(cfg.max_batch as f64)),
            ("max_delay_us", Json::Num(cfg.max_delay_us as f64)),
            ("deadline_ms", Json::Num(cfg.deadline_ms as f64)),
            ("queue_cap", Json::Num(cfg.queue_cap as f64)),
            ("engine_threads", Json::Num(cfg.threads as f64)),
            (
                "read_timeout_ms",
                Json::Num(self.read_timeout.as_millis() as f64),
            ),
            (
                "idle_timeout_ms",
                Json::Num(self.idle_timeout.as_millis() as f64),
            ),
            ("workers", Json::Num(self.workers as f64)),
            ("trace_enabled", Json::Bool(cohortnet_obs::trace::enabled())),
            ("flight_slots", Json::Num(FLIGHT_SLOTS as f64)),
            ("flight_total", Json::Num(ctl.flight().total() as f64)),
            ("flight_dropped", Json::Num(ctl.flight().dropped() as f64)),
        ]))
    }
}

/// One flight-recorder entry as a JSON object (the `/debug/requests`
/// row shape).
fn flight_record_json(r: &FlightRecord) -> Json {
    obj(vec![
        ("seq", Json::Num(r.seq as f64)),
        ("rid", Json::Str(r.rid.as_str().to_string())),
        ("trace", Json::Str(r.trace_hex())),
        ("route", Json::Str(r.route.as_str().to_string())),
        ("status", Json::Num(f64::from(r.status))),
        ("total_us", Json::Num(f64::from(r.total_us))),
        ("accept_us", Json::Num(f64::from(r.stage.accept_us))),
        ("queue_us", Json::Num(f64::from(r.stage.queue_us))),
        ("batch_wait_us", Json::Num(f64::from(r.stage.batch_wait_us))),
        ("compute_us", Json::Num(f64::from(r.stage.compute_us))),
        ("render_us", Json::Num(f64::from(r.stage.render_us))),
        ("write_us", Json::Num(f64::from(r.stage.write_us))),
        ("batch_size", Json::Num(f64::from(r.stage.batch_size))),
        ("replica", Json::Num(f64::from(r.stage.replica))),
    ])
}

/// Renders the `GET /debug/requests` body from a flight recorder. The
/// query string selects the view: `view=recent` (default, newest first),
/// `view=slowest` (by total latency), `view=errors` (status ≥ 400, newest
/// first); `n=<count>` caps the rows (default 32). Shared by the
/// single-model server and the fleet router so both triage surfaces read
/// identically.
pub fn debug_requests_body(flight: &FlightRecorder, query: &str) -> String {
    let view = query_param(query, "view").unwrap_or("recent");
    let n = query_param(query, "n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .min(FLIGHT_SLOTS);
    let mut records = flight.snapshot();
    match view {
        "slowest" => records.sort_by_key(|r| std::cmp::Reverse(r.total_us)),
        "errors" => records.retain(|r| r.status >= 400),
        _ => {}
    }
    records.truncate(n);
    json::render(&obj(vec![
        ("view", Json::Str(view.to_string())),
        ("total", Json::Num(flight.total() as f64)),
        ("dropped", Json::Num(flight.dropped() as f64)),
        (
            "requests",
            Json::Arr(records.iter().map(flight_record_json).collect()),
        ),
    ]))
}

/// Handles `GET /debug/trace`: `?on` enables the process-wide trace
/// collector, `?off` disables it, no argument just reports. Shared by the
/// single-model server and the fleet router.
pub fn debug_trace_body(query: &str) -> String {
    if query_param(query, "on").is_some() {
        cohortnet_obs::trace::enable();
    } else if query_param(query, "off").is_some() {
        cohortnet_obs::trace::disable();
    }
    json::render(&obj(vec![(
        "tracing",
        Json::Bool(cohortnet_obs::trace::enabled()),
    )]))
}

/// Renders the `/explain` response for one instance body against a loaded
/// model, using `inf` only for its shape. Shared by the single-model
/// server and the fleet router.
pub fn explain_response(loaded: &LoadedModel, inf: &Inferencer, body: &str) -> (u16, String) {
    if loaded.model.discovery.is_none() {
        return (
            409,
            error_body("snapshot has no discovery artefacts; /explain needs a trained pool"),
        );
    }
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid json: {e}"))),
    };
    let score_req = match parse_instance(&parsed) {
        Ok(r) => r,
        Err(why) => return (400, error_body(why.as_str())),
    };
    let (nf, t_steps, nl) = (inf.n_features(), inf.time_steps(), inf.n_labels());
    if score_req.x.len() != t_steps * nf || score_req.mask.len() != nf {
        return (
            400,
            error_body(&format!(
                "instance shapes must be x: {} (= {t_steps} x {nf}), mask: {nf}",
                t_steps * nf
            )),
        );
    }
    // explain_patient works on a prepared dataset; wrap the single instance
    // as a one-patient dataset with dummy labels (labels are unused by the
    // explanation itself).
    let prep = Prepared {
        n_features: nf,
        time_steps: t_steps,
        n_labels: nl,
        patients: vec![PreparedPatient {
            x: score_req.x,
            mask: score_req.mask,
            labels: vec![0.0; nl],
            labels_u8: vec![0; nl],
        }],
    };
    let exp = explain_patient(&loaded.model, &loaded.params, &prep, 0);
    let cohorts = Json::Arr(
        exp.cohorts
            .iter()
            .map(|c| {
                obj(vec![
                    ("feature", Json::Num(c.feature as f64)),
                    ("cohort", Json::Num(c.cohort as f64)),
                    ("beta", Json::Num(f64::from(c.beta))),
                    ("score", Json::Num(f64::from(c.score))),
                    (
                        "matched_steps",
                        Json::Arr(
                            c.matched_steps
                                .iter()
                                .map(|&t| Json::Num(t as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let attention = Json::Arr(
        exp.attention
            .iter()
            .map(|m| Json::Arr((0..m.rows()).map(|r| num_arr(m.row(r))).collect()))
            .collect(),
    );
    let body = obj(vec![
        ("base_prob", num_arr(&exp.base_prob)),
        ("full_prob", num_arr(&exp.full_prob)),
        ("feature_scores", num_arr(&exp.feature_scores)),
        ("cohorts", cohorts),
        ("attention", attention),
    ]);
    (200, json::render(&body))
}

/// Renders the `GET /cohorts` body for a loaded model. Shared by the
/// single-model server and the fleet router.
pub fn cohorts_json(loaded: &LoadedModel) -> String {
    let Some(d) = loaded.model.discovery.as_ref() else {
        return json::render(&obj(vec![
            ("has_cohorts", Json::Bool(false)),
            ("features", Json::Arr(Vec::new())),
        ]));
    };
    let pool = &d.pool;
    let features = Json::Arr(
        pool.per_feature
            .iter()
            .enumerate()
            .map(|(i, cohorts)| {
                let mask = Json::Arr(pool.masks[i].iter().map(|&f| Json::Num(f as f64)).collect());
                let rows = Json::Arr(
                    cohorts
                        .iter()
                        .enumerate()
                        .map(|(q, c)| {
                            let pattern = Json::Arr(
                                c.pattern
                                    .iter()
                                    .map(|&(f, s)| {
                                        Json::Arr(vec![
                                            Json::Num(f as f64),
                                            Json::Num(f64::from(s)),
                                        ])
                                    })
                                    .collect(),
                            );
                            obj(vec![
                                ("cohort", Json::Num(q as f64)),
                                ("pattern", pattern),
                                ("frequency", Json::Num(c.frequency as f64)),
                                ("n_patients", Json::Num(c.n_patients as f64)),
                                ("pos_rate", num_arr(&c.pos_rate)),
                            ])
                        })
                        .collect(),
                );
                obj(vec![
                    ("feature", Json::Num(i as f64)),
                    ("mask", mask),
                    ("cohorts", rows),
                ])
            })
            .collect(),
    );
    json::render(&obj(vec![
        ("has_cohorts", Json::Bool(true)),
        ("features", features),
    ]))
}
