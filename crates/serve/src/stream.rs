//! Event-stream ingestion and online scoring — the `/ingest` surface.
//!
//! [`serve_stream`] runs a [`StreamApp`] behind the same event-loop
//! transport as [`crate::serve`]: the full batch surface (`/score`,
//! `/explain`, `/cohorts`, `/healthz`, `/metrics`, the debug routes,
//! `/shutdown`) is delegated verbatim to the inner scoring app, and three
//! streaming routes are layered on top:
//!
//! * `POST /ingest` — body `{"session": id, "events": [{"f": feature,
//!   "t": hours, "v": value}, ...], "score": bool}` (score defaults to
//!   true). Events are applied in order to the named session's
//!   [`StreamSession`]; the first invalid event fails the request with
//!   `400` (earlier events in the batch stay applied — ingestion is
//!   per-event, exactly like the wire would deliver them). With
//!   `"score": true` the response embeds the re-scored prediction in the
//!   `/score` row shape.
//! * `GET /sessions` — every live session's counters;
//!   `POST /sessions/<id>/score` — scores the session's current window and
//!   renders **byte-identical** `/score` output for one instance (this is
//!   the endpoint the identity harness diffs against the batch server);
//!   `DELETE /sessions/<id>` — explicit eviction.
//!
//! Sessions are ephemeral by design: they live in server memory, never in
//! the snapshot (see `DESIGN.md` §14 and the mid-stream snapshot tests).
//! An idle sweep plus an LRU cap bound the store; streaming scores run
//! directly on the worker thread through
//! [`cohortnet::infer::Inferencer::score_one_with_cache`] — they never
//! enter the batching engine, so a poisoned session can degrade to a typed
//! `500` without touching the batch path. Chaos sites: `stream.ingest.drop`
//! (503 before any state change), `stream.session.evict` (410 + eviction),
//! `stream.score` (panic inside the score, caught and converted to session
//! poisoning).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cohortnet::snapshot::LoadedModel;
use cohortnet::stream::{StreamConfig, StreamEvent, StreamSession, DEFAULT_HORIZON_HOURS};
use cohortnet_obs::span::span;

use crate::engine::RowScore;
use crate::json::{self, obj, Json};
use crate::metrics::Metrics;
use crate::server::{
    error_body, row_to_json, score_rows_response, serve_app, App, AppResponse, ScoreApp, Server,
    ServerConfig, ServerCtl,
};

/// Knobs specific to the streaming server, over and above [`ServerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Hours of wall clock the model's `T` bins cover (0.0 = the 48-hour
    /// [`DEFAULT_HORIZON_HOURS`] every synthetic profile uses).
    pub horizon_hours: f32,
    /// Idle eviction: a session untouched for this long is dropped on the
    /// next sweep (0 = [`DEFAULT_SESSION_IDLE`]).
    pub session_idle_ms: u64,
    /// Maximum live sessions; beyond it the least-recently-active session
    /// is evicted (0 = [`DEFAULT_MAX_SESSIONS`]).
    pub max_sessions: usize,
}

/// Default idle eviction window: five minutes.
pub const DEFAULT_SESSION_IDLE: Duration = Duration::from_secs(300);

/// Default live-session cap.
pub const DEFAULT_MAX_SESSIONS: usize = 1024;

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            horizon_hours: 0.0,
            session_idle_ms: 0,
            max_sessions: 0,
        }
    }
}

impl StreamOptions {
    fn effective_horizon(&self) -> f32 {
        if self.horizon_hours > 0.0 {
            self.horizon_hours
        } else {
            DEFAULT_HORIZON_HOURS
        }
    }

    fn effective_idle(&self) -> Duration {
        if self.session_idle_ms == 0 {
            DEFAULT_SESSION_IDLE
        } else {
            Duration::from_millis(self.session_idle_ms)
        }
    }

    fn effective_max_sessions(&self) -> usize {
        if self.max_sessions == 0 {
            DEFAULT_MAX_SESSIONS
        } else {
            self.max_sessions
        }
    }
}

/// Mutable per-session state behind the slot lock.
struct SessionState {
    session: StreamSession,
    /// A scoring panic (chaos or real) poisons only this session; every
    /// later request on it gets a typed `500` and the slot is evicted.
    /// Eviction itself always happens *after* the entry lock is dropped:
    /// the map lock is ordered before entry locks (`handle_sessions_list`
    /// takes map → entry), so taking the map lock while holding an entry
    /// lock would invert the order and deadlock.
    poisoned: bool,
    /// Ingest instants not yet covered by a score — drained into the
    /// staleness histogram when the next score lands. Bounded at
    /// [`MAX_PENDING_STALENESS`]: past the cap the oldest (worst-staleness)
    /// instants are kept and new ones dropped, so a session that only ever
    /// ingests with `"score": false` cannot grow this without bound.
    pending: Vec<Instant>,
}

/// Cap on un-scored ingest instants kept per session for the staleness
/// histogram.
const MAX_PENDING_STALENESS: usize = 4096;

/// One session slot: the state mutex plus an activity stamp the sweep can
/// read without taking the state lock.
struct Slot {
    entry: Mutex<SessionState>,
    /// Microseconds since the app's epoch at last touch.
    last_active_us: AtomicU64,
}

/// The streaming application: an inner [`ScoreApp`] for the whole batch
/// surface plus the session store for `/ingest` and `/sessions`.
pub(crate) struct StreamApp {
    score: ScoreApp,
    cfg: StreamConfig,
    idle: Duration,
    max_sessions: usize,
    sessions: Mutex<HashMap<String, Arc<Slot>>>,
    epoch: Instant,
    metrics: Arc<Metrics>,
}

/// Binds the listener and runs the streaming server: the single-model
/// scoring surface plus `/ingest` + `/sessions` session management.
///
/// # Errors
/// Propagates listener bind and reactor setup failures.
pub fn serve_stream(
    loaded: LoadedModel,
    cfg: ServerConfig,
    opts: StreamOptions,
) -> std::io::Result<Server> {
    let (score, metrics) = ScoreApp::build(loaded, &cfg);
    let stream_cfg =
        StreamConfig::for_inferencer(score.engine.inferencer(), opts.effective_horizon());
    let app = StreamApp {
        score,
        cfg: stream_cfg,
        idle: opts.effective_idle(),
        max_sessions: opts.effective_max_sessions(),
        sessions: Mutex::new(HashMap::new()),
        epoch: Instant::now(),
        metrics: Arc::clone(&metrics),
    };
    serve_app(Arc::new(app), cfg.transport(), metrics)
}

/// Decoded `POST /ingest` body.
struct IngestBody {
    session: String,
    events: Vec<StreamEvent>,
    score: bool,
}

/// Decodes `{"session": id, "events": [{"f","t","v"}...], "score": bool}`.
fn parse_ingest(body: &str) -> Result<IngestBody, String> {
    let parsed = json::parse(body).map_err(|e| format!("invalid json: {e}"))?;
    let session = parsed
        .get("session")
        .and_then(Json::as_str)
        .ok_or("body needs a string field \"session\"")?;
    if session.is_empty() || session.len() > 128 {
        return Err("\"session\" must be 1..=128 characters".into());
    }
    let events_json = parsed
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("body needs an array field \"events\"")?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, ev) in events_json.iter().enumerate() {
        let f = ev
            .get("f")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: needs a numeric field \"f\""))?;
        let t = ev
            .get("t")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: needs a numeric field \"t\""))?;
        let v = ev
            .get("v")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: needs a numeric field \"v\""))?;
        if f < 0.0 || f.fract() != 0.0 || f > usize::MAX as f64 {
            return Err(format!("event {i}: \"f\" must be a non-negative integer"));
        }
        events.push(StreamEvent {
            feature: f as usize,
            ts: t as f32,
            value: v as f32,
        });
    }
    let score = parsed.get("score").and_then(Json::as_bool).unwrap_or(true);
    Ok(IngestBody {
        session: session.to_string(),
        events,
        score,
    })
}

impl StreamApp {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Idle + LRU eviction, run with the map lock held. Updates the active
    /// gauge and the evicted counter.
    fn sweep(&self, map: &mut HashMap<String, Arc<Slot>>) {
        let now = self.now_us();
        let idle_us = self.idle.as_micros() as u64;
        let before = map.len();
        map.retain(|_, slot| {
            now.saturating_sub(slot.last_active_us.load(Ordering::Relaxed)) <= idle_us
        });
        let mut evicted = (before - map.len()) as u64;
        while map.len() > self.max_sessions {
            let lru = map
                .iter()
                .min_by_key(|(_, s)| s.last_active_us.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        if evicted > 0 {
            self.metrics.stream_sessions_evicted.add(evicted);
        }
        self.metrics.stream_sessions_active.set(map.len() as i64);
    }

    /// Fetches or creates the named session, touching its activity stamp
    /// and sweeping the store either way.
    fn get_or_create(&self, id: &str) -> Arc<Slot> {
        let mut map = self.sessions.lock().expect("session map poisoned");
        self.sweep(&mut map);
        if let Some(slot) = map.get(id) {
            slot.last_active_us.store(self.now_us(), Ordering::Relaxed);
            return Arc::clone(slot);
        }
        let slot = Arc::new(Slot {
            entry: Mutex::new(SessionState {
                session: StreamSession::new(self.cfg, self.score.loaded.scaler.clone()),
                poisoned: false,
                pending: Vec::new(),
            }),
            last_active_us: AtomicU64::new(self.now_us()),
        });
        map.insert(id.to_string(), Arc::clone(&slot));
        self.sweep(&mut map);
        slot
    }

    fn lookup(&self, id: &str) -> Option<Arc<Slot>> {
        let map = self.sessions.lock().expect("session map poisoned");
        map.get(id).map(|slot| {
            slot.last_active_us.store(self.now_us(), Ordering::Relaxed);
            Arc::clone(slot)
        })
    }

    /// Removes the session outright. Returns whether it existed.
    fn evict(&self, id: &str) -> bool {
        let mut map = self.sessions.lock().expect("session map poisoned");
        let existed = map.remove(id).is_some();
        if existed {
            self.metrics.stream_sessions_evicted.inc();
        }
        self.metrics.stream_sessions_active.set(map.len() as i64);
        existed
    }

    /// Scores one session's current window on this worker thread (never
    /// through the batching engine), with the `stream.score` chaos site and
    /// panic containment: a panic poisons only this session and returns the
    /// typed `500`. The *caller* must then drop the entry guard and call
    /// [`StreamApp::evict`] — evicting here would take the map lock while
    /// the entry lock is held, inverting the map → entry lock order used by
    /// `handle_sessions_list` and deadlocking against it.
    fn score_session(
        &self,
        state: &mut SessionState,
    ) -> Result<cohortnet::infer::DetailedScore, AppResponse> {
        let _sp = span("stream.score");
        let (full_before, reused_before) = state.session.probe_stats();
        let inf = self.score.engine.inferencer();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            cohortnet_chaos::panic_if_fires("stream.score");
            state.session.score(inf)
        }));
        match outcome {
            Ok(detail) => {
                let now = Instant::now();
                for t in state.pending.drain(..) {
                    self.metrics
                        .stream_staleness_us
                        .observe(now.duration_since(t).as_micros() as u64);
                }
                let (full_after, reused_after) = state.session.probe_stats();
                self.metrics
                    .stream_probes_full
                    .add(full_after - full_before);
                self.metrics
                    .stream_probes_reused
                    .add(reused_after - reused_before);
                self.metrics.stream_scores.inc();
                Ok(detail)
            }
            Err(_) => {
                state.poisoned = true;
                Err(AppResponse::json(
                    500,
                    error_body("session scoring panicked; session evicted"),
                ))
            }
        }
    }

    fn handle_ingest(&self, body: &str) -> AppResponse {
        let _sp = span("stream.ingest");
        if cohortnet_chaos::fires("stream.ingest.drop") {
            self.metrics.stream_ingest_dropped.inc();
            return AppResponse::json(503, error_body("chaos: ingest dropped"));
        }
        let ingest = match parse_ingest(body) {
            Ok(v) => v,
            Err(why) => return AppResponse::json(400, error_body(&why)),
        };
        if cohortnet_chaos::fires("stream.session.evict") {
            self.evict(&ingest.session);
            return AppResponse::json(
                410,
                error_body("chaos: session evicted; re-ingest to rebuild"),
            );
        }
        let slot = self.get_or_create(&ingest.session);
        let mut state = slot.entry.lock().expect("session lock poisoned");
        if state.poisoned {
            drop(state);
            self.evict(&ingest.session);
            return AppResponse::json(500, error_body("session poisoned; session evicted"));
        }
        let (mut ingested, mut stale) = (0u64, 0u64);
        {
            let _sp = span("stream.apply");
            for (i, ev) in ingest.events.iter().enumerate() {
                match state.session.ingest(*ev) {
                    Ok(out) => {
                        if out.accepted {
                            ingested += 1;
                            if state.pending.len() < MAX_PENDING_STALENESS {
                                state.pending.push(Instant::now());
                            }
                        } else {
                            stale += 1;
                        }
                    }
                    Err(e) => {
                        self.metrics.stream_events.add(ingested);
                        self.metrics.stream_events_stale.add(stale);
                        return AppResponse::json(400, error_body(&format!("event {i}: {e}")));
                    }
                }
            }
        }
        self.metrics.stream_events.add(ingested);
        self.metrics.stream_events_stale.add(stale);
        let prediction = if ingest.score {
            match self.score_session(&mut state) {
                Ok(detail) => Some(row_to_json(&RowScore::from_output(&detail.output, 0))),
                Err(resp) => {
                    // Evict only after releasing the entry lock (map lock is
                    // ordered before entry locks — see score_session docs).
                    drop(state);
                    self.evict(&ingest.session);
                    return resp;
                }
            }
        } else {
            None
        };
        let mut pairs = vec![
            ("session", Json::Str(ingest.session.clone())),
            ("ingested", Json::Num(ingested as f64)),
            ("stale", Json::Num(stale as f64)),
            (
                "window_start",
                Json::Num(f64::from(state.session.window_start())),
            ),
            (
                "events_total",
                Json::Num(state.session.events_total() as f64),
            ),
            ("stale_total", Json::Num(state.session.stale_total() as f64)),
            (
                "scores_total",
                Json::Num(state.session.scores_total() as f64),
            ),
        ];
        if let Some(p) = prediction {
            pairs.push(("prediction", p));
        }
        slot.last_active_us.store(self.now_us(), Ordering::Relaxed);
        AppResponse::json(200, json::render(&obj(pairs)))
    }

    /// `POST /sessions/<id>/score`: the current window rendered through the
    /// exact `/score` response path for one instance — the bytes the
    /// identity harness diffs against the batch server.
    fn handle_session_score(&self, id: &str) -> AppResponse {
        let Some(slot) = self.lookup(id) else {
            return AppResponse::json(404, error_body("unknown session"));
        };
        let mut state = slot.entry.lock().expect("session lock poisoned");
        if state.poisoned {
            drop(state);
            self.evict(id);
            return AppResponse::json(500, error_body("session poisoned; session evicted"));
        }
        match self.score_session(&mut state) {
            Ok(detail) => {
                let row = RowScore::from_output(&detail.output, 0);
                let (status, body) = score_rows_response(&[Ok(row)]);
                AppResponse::json(status, body)
            }
            Err(resp) => {
                drop(state);
                self.evict(id);
                resp
            }
        }
    }

    fn handle_sessions_list(&self) -> AppResponse {
        let map = self.sessions.lock().expect("session map poisoned");
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();
        let sessions = Json::Arr(
            ids.iter()
                .map(|id| {
                    let state = map[*id].entry.lock().expect("session lock poisoned");
                    obj(vec![
                        ("session", Json::Str((*id).clone())),
                        (
                            "window_start",
                            Json::Num(f64::from(state.session.window_start())),
                        ),
                        (
                            "events_total",
                            Json::Num(state.session.events_total() as f64),
                        ),
                        ("stale_total", Json::Num(state.session.stale_total() as f64)),
                        (
                            "scores_total",
                            Json::Num(state.session.scores_total() as f64),
                        ),
                        ("poisoned", Json::Bool(state.poisoned)),
                    ])
                })
                .collect(),
        );
        AppResponse::json(
            200,
            json::render(&obj(vec![
                ("active", Json::Num(map.len() as f64)),
                ("sessions", sessions),
            ])),
        )
    }

    fn handle_session_delete(&self, id: &str) -> AppResponse {
        if self.evict(id) {
            AppResponse::json(200, json::render(&obj(vec![("evicted", Json::Bool(true))])))
        } else {
            AppResponse::json(404, error_body("unknown session"))
        }
    }
}

impl App for StreamApp {
    fn handle(&self, req: &crate::http::Request, ctl: &ServerCtl<'_>) -> AppResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/ingest") => self.handle_ingest(&req.body),
            ("GET", "/sessions") => self.handle_sessions_list(),
            (_, "/ingest") => AppResponse::json(405, error_body("use POST for this endpoint")),
            (_, "/sessions") => AppResponse::json(405, error_body("use GET for this endpoint")),
            (method, path) => {
                if let Some(rest) = path.strip_prefix("/sessions/") {
                    if let Some(id) = rest.strip_suffix("/score") {
                        return match method {
                            "POST" => self.handle_session_score(id),
                            _ => AppResponse::json(405, error_body("use POST for this endpoint")),
                        };
                    }
                    return match method {
                        "DELETE" => self.handle_session_delete(rest),
                        _ => AppResponse::json(405, error_body("use DELETE for this endpoint")),
                    };
                }
                self.score.handle(req, ctl)
            }
        }
    }

    fn on_drained(&self) {
        self.score.on_drained();
    }
}
