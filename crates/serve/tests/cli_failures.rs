//! CLI failure round-trips: every snapshot rejection path the library
//! exposes must also surface through the `cohortnet-serve` binary as a
//! non-zero exit with a `snapshot rejected: ...` line naming the cause —
//! and the `--demo` fallback must come up, serve, and shut down cleanly
//! without any snapshot at all.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::OnceLock;

use cohortnet_serve::client::read_response;
use cohortnet_serve::demo;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cohortnet-serve")
}

/// One deterministic trained snapshot (with discovery sections) shared by
/// every tamper case.
fn snapshot_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| demo::demo_bundle().snapshot)
}

/// FNV-1a 64 — the snapshot checksum function, local copy for re-tagging
/// tampered sections.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Applies `edit` to the named section's payload and rewrites that
/// section's header (line count + checksum) so the tampering is
/// *consistent*: the checksum passes and the loader must catch the semantic
/// problem itself.
fn tamper(text: &str, section: &str, edit: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    let mut lines = text.lines().peekable();
    out.push_str(lines.next().expect("snapshot header"));
    out.push('\n');
    while let Some(line) = lines.next() {
        let parts: Vec<&str> = line.split(' ').collect();
        assert_eq!(parts[0], "#section", "expected a section header: {line}");
        let name = parts[1];
        let n: usize = parts[2].parse().expect("line count");
        let mut payload = String::new();
        for _ in 0..n {
            payload.push_str(lines.next().expect("payload line"));
            payload.push('\n');
        }
        let payload = if name == section {
            edit(&payload)
        } else {
            payload
        };
        let count = payload.lines().count();
        let sum = fnv64(payload.as_bytes());
        out.push_str(&format!("#section {name} {count} {sum:016x}\n"));
        out.push_str(&payload);
    }
    out
}

/// Rewrites `key=<anything>` to `key=<value>` in a config payload.
fn set_config(payload: &str, key: &str, value: &str) -> String {
    payload
        .lines()
        .map(|l| {
            if l.starts_with(&format!("{key}=")) {
                format!("{key}={value}")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Runs `cohortnet-serve --snapshot <tampered>` and asserts it exits 1 with
/// a `snapshot rejected` line mentioning `expect_in_stderr`.
fn assert_cli_rejects(case: &str, text: &str, expect_in_stderr: &str) {
    let dir = std::env::temp_dir().join(format!("cohortnet-cli-{case}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.cns");
    std::fs::write(&path, text).expect("write tampered snapshot");
    let out = Command::new(bin())
        .args([
            "--snapshot",
            path.to_str().expect("utf8 path"),
            "--port",
            "0",
        ])
        .output()
        .expect("run cohortnet-serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{case}: expected exit 1, got {:?}; stderr:\n{stderr}",
        out.status
    );
    assert!(
        stderr.contains("snapshot rejected"),
        "{case}: stderr lacks the rejection line:\n{stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "{case}: stderr should mention {expect_in_stderr:?}:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_wrong_header() {
    let text = snapshot_text().replace("#cohortnet-snapshot v1", "#cohortnet-snapshot v9");
    assert_cli_rejects("wrong-header", &text, "header");
}

#[test]
fn cli_rejects_corrupt_section_payload() {
    // Flip one digit inside the params payload without re-tagging the
    // checksum.
    let text = snapshot_text();
    let needle = "param\t";
    let idx = text.find(needle).expect("params payload present");
    let mut bytes = text.as_bytes().to_vec();
    bytes[idx + needle.len() + 16] ^= 0x01;
    let text = String::from_utf8(bytes).expect("still utf-8");
    assert_cli_rejects("corrupt-payload", &text, "corrupt");
}

#[test]
fn cli_rejects_k_states_disagreement() {
    let text = tamper(snapshot_text(), "states", |payload| {
        payload.replacen("k\t4", "k\t3", 1)
    });
    assert_cli_rejects("k-states", &text, "k_states");
}

#[test]
fn cli_rejects_feature_count_disagreement() {
    let text = tamper(snapshot_text(), "scaler", |payload| {
        payload
            .lines()
            .map(|l| {
                if l.starts_with("mean\t") || l.starts_with("std\t") {
                    let cut = l.rfind(',').expect("has several values");
                    l[..cut].to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    });
    assert_cli_rejects("feature-count", &text, "features");
}

#[test]
fn cli_rejects_architecture_drift() {
    let text = tamper(snapshot_text(), "config", |payload| {
        set_config(payload, "d_hidden", "8")
    });
    assert_cli_rejects("arch-drift", &text, "params");
}

#[test]
fn cli_rejects_invalid_config() {
    let text = tamper(snapshot_text(), "config", |payload| {
        set_config(payload, "k_states", "16")
    });
    assert_cli_rejects("invalid-k", &text, "k_states");
    let text = tamper(snapshot_text(), "config", |payload| {
        set_config(payload, "time_steps", "0")
    });
    assert_cli_rejects("invalid-t", &text, "time_steps");
}

#[test]
fn cli_rejects_partial_discovery_sections() {
    let text = tamper(snapshot_text(), "pool", |_| "none\n".to_string());
    assert_cli_rejects("partial-discovery", &text, "discovery");
}

#[test]
fn cli_demo_fallback_serves_and_shuts_down() {
    // `--demo` needs no snapshot at all: the binary trains its own model,
    // announces the bound address, serves, and drains on POST /shutdown.
    let mut child = Command::new(bin())
        .args(["--demo", "--port", "0"])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn cohortnet-serve --demo");
    let stderr = child.stderr.take().expect("stderr pipe");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child exited before announcing its address")
            .expect("read child stderr");
        if let Some(rest) = line.strip_prefix("listening on http://") {
            break rest.trim().to_string();
        }
    };

    let mut stream = TcpStream::connect(&addr).expect("connect to demo server");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("write healthz");
    let resp = read_response(&mut stream).expect("healthz response");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"status\":\"ok\""), "{}", resp.body);

    let mut stream = TcpStream::connect(&addr).expect("connect for shutdown");
    stream
        .write_all(
            b"POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .expect("write shutdown");
    let resp = read_response(&mut stream).expect("shutdown response");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let status = child.wait().expect("child exit status");
    assert!(status.success(), "demo server exited with {status}");
}

#[test]
fn cli_demo_snapshot_writes_a_loadable_artifact() {
    let dir = std::env::temp_dir().join(format!("cohortnet-cli-demo-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("demo.cns");
    let out = Command::new(bin())
        .args(["--demo-snapshot", path.to_str().expect("utf8 path")])
        .output()
        .expect("run cohortnet-serve");
    assert!(out.status.success(), "{:?}", out.status);
    let text = std::fs::read_to_string(&path).expect("snapshot written");
    assert!(cohortnet::snapshot::load_snapshot(&text).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
