//! Keep-alive conformance and accept-path contracts of the event-loop
//! server core:
//!
//! * sequential and pipelined requests on one connection score
//!   bit-identically to one-shot `Connection: close` requests;
//! * the idle timeout closes a quiet keep-alive connection cleanly (EOF,
//!   no stray bytes), and `Connection: close` is honored when requested;
//! * early error responses survive a client that is still sending
//!   (write-side shutdown + bounded drain instead of an RST);
//! * `--max-connections` is exact under concurrent accept stress — the
//!   active gauge can never pass the cap — and a byte-at-a-time sender
//!   never blocks other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cohortnet::snapshot::load_snapshot;
use cohortnet_serve::client::{self, Connection};
use cohortnet_serve::http::MAX_BODY_BYTES;
use cohortnet_serve::{serve, Server, ServerConfig};

fn demo_server(cfg: ServerConfig) -> Server {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let loaded = load_snapshot(&bundle.snapshot).expect("snapshot loads");
    serve(loaded, cfg).expect("server starts")
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_bodies() -> Vec<String> {
    cohortnet_serve::demo::demo_bundle()
        .examples
        .iter()
        .map(|e| {
            format!(
                "{{\"instances\":[{{\"x\":[{}],\"mask\":[{}]}}]}}",
                join(&e.x),
                join(&e.mask)
            )
        })
        .collect()
}

/// Reads one counter/gauge value from a `/metrics` body.
fn metric_value(metrics_body: &str, family: &str) -> f64 {
    metrics_body
        .lines()
        .find_map(|line| line.strip_prefix(family)?.trim().parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn sequential_requests_on_one_connection_match_close_mode() {
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let bodies = score_bodies();

    // Reference: one-shot close-mode requests.
    let reference: Vec<String> = bodies
        .iter()
        .map(|b| {
            let resp = client::request(addr, "POST", "/score", b).expect("close-mode request");
            assert_eq!(resp.status, 200, "{}", resp.body);
            resp.body
        })
        .collect();

    // Same requests over a single keep-alive connection.
    let mut conn = Connection::connect(addr).expect("connect");
    for (i, body) in bodies.iter().enumerate() {
        let resp = conn
            .request("POST", "/score", body)
            .expect("keep-alive request");
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(
            resp.header("connection"),
            Some("keep-alive"),
            "request {i}: {}",
            resp.head
        );
        assert_eq!(
            resp.body, reference[i],
            "keep-alive response {i} differs from close-mode"
        );
    }
    drop(conn);

    // The server counted the connection reuse.
    let resp = client::request(addr, "GET", "/metrics", "").expect("/metrics");
    let reused = metric_value(&resp.body, "cohortnet_keepalive_requests_total ");
    assert!(
        reused >= (bodies.len() - 1) as f64,
        "keep-alive reuse not counted: {reused}"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_without_corruption() {
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let bodies = score_bodies();

    let expect: Vec<String> = bodies
        .iter()
        .take(4)
        .map(|b| {
            client::request(addr, "POST", "/score", b)
                .expect("reference")
                .body
        })
        .collect();

    // Fire all four requests in one burst, then read four framed
    // responses: the server works them one at a time per connection, so
    // ordering and framing must both hold.
    let mut conn = Connection::connect(addr).expect("connect");
    for body in bodies.iter().take(4) {
        conn.send("POST", "/score", body).expect("pipelined send");
    }
    for (i, want) in expect.iter().enumerate() {
        let resp = conn.read_reply().expect("pipelined reply");
        assert_eq!(resp.status, 200, "pipelined reply {i}: {}", resp.body);
        assert_eq!(&resp.body, want, "pipelined reply {i} out of order");
    }
    server.shutdown();
}

#[test]
fn idle_timeout_closes_quiet_connections_cleanly() {
    let server = demo_server(ServerConfig {
        port: 0,
        idle_timeout_ms: 200,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let mut conn = Connection::connect(addr).expect("connect");
    let resp = conn.request("GET", "/healthz", "").expect("first request");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains("\"idle_timeout_ms\":200"),
        "{}",
        resp.body
    );

    // Go quiet past the idle timeout: the server must close with a bare
    // FIN — EOF with zero stray bytes, so no later response can corrupt.
    let started = Instant::now();
    conn.stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut leftover = Vec::new();
    conn.stream()
        .read_to_end(&mut leftover)
        .expect("clean EOF, not a reset");
    assert!(
        leftover.is_empty(),
        "stray bytes after idle close: {:?}",
        String::from_utf8_lossy(&leftover)
    );
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "closed before the idle timeout: {:?}",
        started.elapsed()
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle close took {:?}",
        started.elapsed()
    );
    server.shutdown();
}

#[test]
fn connection_close_is_honored_when_requested() {
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("write request");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut raw = String::new();
    // read_to_string returning at all proves the server closed the socket.
    stream.read_to_string(&mut raw).expect("read to EOF");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let head = raw.split("\r\n\r\n").next().unwrap_or("");
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "{head}"
    );
    server.shutdown();
}

/// Satellite regression: an early error response (413 here) used to be
/// written and the socket dropped while the client was still mid-send,
/// which could RST the response away. The server now half-closes and
/// drains, so a slow sender reliably reads the status.
#[test]
fn slow_sender_still_observes_the_413() {
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let head = format!(
        "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    stream.write_all(head.as_bytes()).expect("write head");
    // The server has already decided on 413 by now; keep sending body
    // chunks anyway, slowly, like a client that has not read the verdict
    // yet. The writes may eventually fail once the drain budget closes the
    // socket — what must NOT fail is reading the 413 afterwards.
    let chunk = vec![b'x'; 32 << 10];
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(40));
        if stream.write_all(&chunk).is_err() {
            break;
        }
    }
    let resp = client::read_response(&mut stream).expect("413 must be readable");
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(
        resp.header("x-request-id").is_some(),
        "413 lacks X-Request-Id: {}",
        resp.head
    );
    server.shutdown();
}

/// Acceptance: the accept path never blocks on a stalled client. One
/// byte-at-a-time sender trickles a valid request while a burst of other
/// connections complete; the trickler still gets its answer at the end.
#[test]
fn byte_at_a_time_sender_does_not_block_other_connections() {
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let trickler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        for &byte in raw.iter() {
            stream.write_all(&[byte]).expect("trickled byte");
            std::thread::sleep(Duration::from_millis(25));
        }
        client::read_response(&mut stream).expect("trickled response")
    });

    // While the trickler crawls (~1.4s), healthy traffic flows freely.
    let t0 = Instant::now();
    for i in 0..20 {
        let resp = client::request(addr, "GET", "/healthz", "").expect("healthy request");
        assert_eq!(resp.status, 200, "healthy request {i}");
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthy traffic stalled behind the trickler: {:?}",
        t0.elapsed()
    );

    let resp = trickler.join().expect("trickler thread");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}

/// Acceptance: `--max-connections` is exact under concurrent accept
/// stress. With the cap at 4 and 32 keep-alive clients connecting at
/// once, exactly 4 win and hold their slot; the rest get a retryable 503
/// on a connection that never blocked the accept path; the active gauge
/// never exceeds the cap.
#[test]
fn max_connections_is_exact_under_concurrent_accepts() {
    const CAP: usize = 4;
    const CLIENTS: usize = 32;
    let server = demo_server(ServerConfig {
        port: 0,
        max_connections: CAP,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let start = Arc::new(Barrier::new(CLIENTS));
    let hold = Arc::new(Barrier::new(CLIENTS));
    let ok = Arc::new(AtomicUsize::new(0));
    let rejected = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let (start, hold) = (Arc::clone(&start), Arc::clone(&hold));
            let (ok, rejected) = (Arc::clone(&ok), Arc::clone(&rejected));
            std::thread::spawn(move || {
                start.wait();
                let mut conn = Connection::connect(addr).expect("connect");
                conn.stream()
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("read timeout");
                let resp = conn.request("GET", "/healthz", "").expect("response");
                match resp.status {
                    200 => {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    503 => {
                        assert_eq!(
                            resp.header("retry-after"),
                            Some("1"),
                            "client {i}: 503 without Retry-After: {}",
                            resp.head
                        );
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("client {i}: unexpected status {other}: {}", resp.body),
                }
                // Winners hold their keep-alive slot until every client has
                // its verdict, so slots cannot recycle mid-test.
                hold.wait();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    assert_eq!(
        ok.load(Ordering::SeqCst),
        CAP,
        "admitted connections must equal the cap exactly"
    );
    assert_eq!(
        rejected.load(Ordering::SeqCst),
        CLIENTS - CAP,
        "every over-cap connection must get a 503"
    );

    // All clients dropped: the loop reaps them; the gauge returns to 0 and
    // the counters agree with the exact split. The first probe can race the
    // winners' FIN delivery and get over-cap-rejected itself — that is the
    // limiter doing its job, so a 503 here retries instead of failing.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client::request(addr, "GET", "/metrics", "").expect("/metrics");
        if resp.status == 200 {
            let active = metric_value(&resp.body, "cohortnet_conns_active ");
            assert!(
                active <= CAP as f64,
                "active gauge passed the cap: {active}"
            );
            if active <= 1.0 {
                let rej = metric_value(&resp.body, "cohortnet_conns_rejected_total ");
                assert!(
                    rej >= (CLIENTS - CAP) as f64,
                    "rejected counter lost over-cap clients: {rej}"
                );
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "held connections never reaped (last /metrics status {})",
            resp.status
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

/// Graceful drain under keep-alive: `POST /shutdown` with idle keep-alive
/// connections open and a request in flight must (a) answer the in-flight
/// request — never 503 it — bit-identically to a pre-shutdown reference,
/// (b) close the idle connections with a clean EOF, and (c) let the server
/// join without hanging.
#[test]
fn shutdown_drains_in_flight_and_cuts_idle_keepalive_cleanly() {
    let server = demo_server(ServerConfig {
        port: 0,
        // A generous coalescing window keeps the in-flight request parked
        // in the engine while /shutdown lands.
        engine: cohortnet_serve::EngineConfig {
            max_batch: 64,
            max_delay_us: 300_000,
            ..cohortnet_serve::EngineConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let body = score_bodies().remove(0);

    // Pre-shutdown reference for bit-identity of the drained response.
    let want = client::request(addr, "POST", "/score", &body)
        .expect("reference request")
        .body;

    // Two idle keep-alive connections (each proves liveness first).
    let mut idle: Vec<Connection> = (0..2)
        .map(|i| {
            let mut c = Connection::connect(addr).expect("connect idle");
            let resp = c.request("GET", "/healthz", "").expect("idle warmup");
            assert_eq!(resp.status, 200, "idle conn {i}");
            c
        })
        .collect();

    // One request sent but not yet answered: the batching delay holds it.
    let mut busy = Connection::connect(addr).expect("connect busy");
    busy.send("POST", "/score", &body).expect("send in-flight");
    std::thread::sleep(Duration::from_millis(50));

    // Shutdown while the request is still in flight.
    let resp = client::request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // (a) The accepted request is answered, not 503'd, and bit-identical.
    busy.stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let resp = busy.read_reply().expect("drained response");
    assert_eq!(
        resp.status, 200,
        "in-flight request must drain, not be rejected: {}",
        resp.body
    );
    assert_eq!(resp.body, want, "drained response differs from reference");

    // (b) Idle connections get a bare FIN: EOF with zero stray bytes.
    for (i, conn) in idle.iter_mut().enumerate() {
        conn.stream()
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut leftover = Vec::new();
        conn.stream()
            .read_to_end(&mut leftover)
            .expect("clean EOF on idle conn");
        assert!(
            leftover.is_empty(),
            "idle conn {i} got stray bytes at shutdown: {:?}",
            String::from_utf8_lossy(&leftover)
        );
    }

    // (c) The drain completes promptly.
    let t0 = Instant::now();
    server.join();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown drain hung: {:?}",
        t0.elapsed()
    );
}

/// The portable poll(2) backend serves the same protocol (forced via the
/// env knob; Linux CI otherwise always runs epoll).
#[test]
fn poll_fallback_backend_serves_requests() {
    std::env::set_var("COHORTNET_SERVE_BACKEND", "poll");
    let server = demo_server(ServerConfig {
        port: 0,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let mut conn = Connection::connect(addr).expect("connect");
    for _ in 0..3 {
        let resp = conn
            .request("GET", "/healthz", "")
            .expect("keep-alive request");
        assert_eq!(resp.status, 200);
    }
    let body = score_bodies().remove(0);
    let resp = conn.request("POST", "/score", &body).expect("score");
    assert_eq!(resp.status, 200, "{}", resp.body);
    drop(conn);
    server.shutdown();
    std::env::remove_var("COHORTNET_SERVE_BACKEND");
}
