//! Fuzz the server's two hand-rolled parsers — `json::parse` and
//! `http::read_request` — with seeded byte soups, mutations of valid
//! payloads, and size-cap boundary cases. The contract under fuzz: every
//! input yields `Ok` or a *typed* error ([`HttpError::Malformed`] /
//! [`HttpError::TooLarge`] / [`HttpError::Timeout`], which the server maps
//! to 400/413/408) — never a panic and never a hang.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use cohortnet_serve::http::{read_request, HttpError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use cohortnet_serve::json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A canonical valid `/score` body to mutate.
const VALID_BODY: &str =
    "{\"instances\":[{\"x\":[0.5,-1.25,3e2,0.0],\"mask\":[1,0,1,1]},{\"x\":[1],\"mask\":[0]}]}";

/// A canonical valid request head to mutate.
fn valid_raw(body: &str) -> Vec<u8> {
    format!(
        "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn random_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..max_len);
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

/// Writes `raw` to a real socket, closes the write side, and parses it with
/// a short read timeout so a parser hang fails the test instead of wedging
/// it.
fn feed(raw: &[u8]) -> Result<Request, HttpError> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let raw = raw.to_vec();
    let writer = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).expect("connect");
        let _ = c.write_all(&raw);
        // Dropping the stream closes it: the parser sees EOF, not a stall.
    });
    let (mut conn, _) = listener.accept().expect("accept");
    let result = read_request(&mut conn, Some(Duration::from_millis(2_000)));
    writer.join().expect("writer thread");
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soups (lossily decoded): the JSON parser returns a
    /// typed `Err(String)` or a value, never panics.
    #[test]
    fn json_parse_survives_byte_soup(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let soup = random_bytes(&mut rng, 512);
        let text = String::from_utf8_lossy(&soup);
        let _ = json::parse(&text);
    }

    /// Truncations and single-byte corruptions of a valid body: parse
    /// completes, and the undamaged original still parses.
    #[test]
    fn json_parse_survives_mutations(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = VALID_BODY.as_bytes().to_vec();
        let cut = rng.gen_range(0usize..=bytes.len());
        bytes.truncate(cut);
        if !bytes.is_empty() && rng.gen_bool(0.5) {
            let idx = rng.gen_range(0usize..bytes.len());
            bytes[idx] ^= 1 << rng.gen_range(0u8..8);
        }
        let _ = json::parse(&String::from_utf8_lossy(&bytes));
        prop_assert!(json::parse(VALID_BODY).is_ok());
    }

    /// Arbitrary byte soups over a real socket: the HTTP reader answers
    /// with `Ok` or a typed error without panicking or hanging.
    #[test]
    fn http_reader_survives_byte_soup(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let soup = random_bytes(&mut rng, 2048);
        match feed(&soup) {
            Ok(req) => prop_assert!(!req.method.is_empty()),
            Err(HttpError::Malformed(_) | HttpError::TooLarge | HttpError::Io(_)) => {}
            Err(HttpError::Timeout) => {
                prop_assert!(false, "reader stalled on {} closed bytes", soup.len());
            }
        }
    }

    /// Truncations of a valid request at every boundary: either a complete
    /// parse (cut landed after the declared body) or a typed error.
    #[test]
    fn http_reader_survives_truncation(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = valid_raw(VALID_BODY);
        let cut = rng.gen_range(0usize..=raw.len());
        match feed(&raw[..cut]) {
            Ok(req) => prop_assert_eq!(req.path.as_str(), "/score"),
            Err(HttpError::Malformed(_) | HttpError::TooLarge | HttpError::Io(_)) => {}
            Err(HttpError::Timeout) => prop_assert!(false, "reader stalled at cut {cut}"),
        }
    }
}

#[test]
fn http_reader_rejects_oversized_declared_body() {
    let raw = format!(
        "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    let err = feed(raw.as_bytes()).expect_err("oversized body must be rejected");
    assert!(matches!(err, HttpError::TooLarge), "{err}");
}

#[test]
fn http_reader_rejects_oversized_head() {
    let mut raw = b"GET /".to_vec();
    raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1024));
    let err = feed(&raw).expect_err("oversized head must be rejected");
    assert!(matches!(err, HttpError::TooLarge), "{err}");
}

#[test]
fn http_reader_rejects_non_numeric_content_length() {
    let err = feed(b"POST /score HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
        .expect_err("bad content-length must be rejected");
    assert!(matches!(err, HttpError::Malformed(_)), "{err}");
}

#[test]
fn json_parser_handles_pathological_nesting_without_overflow() {
    // Deep nesting is the classic recursive-descent stack breaker; the
    // parser must answer (value or error) without blowing the stack.
    for depth in [64usize, 512, 4096] {
        let deep = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let _ = json::parse(&deep);
    }
}
