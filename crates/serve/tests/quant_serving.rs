//! Serving contract for the SIMD dispatch and the int8 quantized path:
//!
//! - `/score` renders bit-identical predictions whichever SIMD backend is
//!   active (the f32 kernels are 0-ULP across scalar/SSE2/AVX2, and text
//!   rendering is shortest-round-trip, so text equality is bit equality);
//! - a `--quant` server scores every request, reports `"quant":true` on
//!   `/healthz`, and stays reproducible across engine configurations;
//! - `/healthz` and `/metrics` expose the active kernel backend.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use cohortnet::infer::ScoreRequest;
use cohortnet::snapshot::load_snapshot;
use cohortnet_serve::{serve, EngineConfig, ServerConfig};
use cohortnet_tensor::simd::{set_backend, supported_backends};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_body(examples: &[ScoreRequest]) -> String {
    let instances: Vec<String> = examples
        .iter()
        .map(|e| format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)))
        .collect();
    format!("{{\"instances\":[{}]}}", instances.join(","))
}

fn start(snapshot: &str, quant: bool, engine: EngineConfig) -> cohortnet_serve::Server {
    let loaded = load_snapshot(snapshot).expect("snapshot loads");
    serve(
        loaded,
        ServerConfig {
            port: 0,
            quant,
            engine,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

#[test]
fn score_is_bit_identical_across_simd_backends() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    // Both precisions carry a backend-invariance guarantee: f32 by the 0-ULP
    // kernel contract, int8 by exact integer accumulation.
    for quant in [false, true] {
        let mut reference: Option<String> = None;
        for backend in supported_backends() {
            assert!(set_backend(backend));
            let server = start(&bundle.snapshot, quant, EngineConfig::default());
            let (status, body) = request(
                server.addr(),
                "POST",
                "/score",
                &score_body(&bundle.examples),
            );
            assert_eq!(status, 200, "{body}");
            match &reference {
                None => reference = Some(body),
                Some(want) => assert_eq!(
                    want,
                    &body,
                    "quant={quant}: /score drifted on backend {}",
                    backend.name()
                ),
            }
            server.shutdown();
        }
    }
}

#[test]
fn quant_server_scores_and_reports_its_kernel_path() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let server = start(&bundle.snapshot, true, EngineConfig::default());
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"quant\":true"), "{body}");
    let active = cohortnet_tensor::simd::active().name();
    assert!(
        body.contains(&format!("\"simd_backend\":\"{active}\"")),
        "{body}"
    );

    let (status, body) = request(addr, "POST", "/score", &score_body(&bundle.examples));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"prob\""), "{body}");

    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!(
            "cohortnet_build_info{{simd=\"{active}\",quant=\"on\"}} 1"
        )),
        "build info gauge missing: {body}"
    );
    server.shutdown();

    // The f32 server reports the same backend with quant off.
    let server = start(&bundle.snapshot, false, EngineConfig::default());
    let (status, body) = request(server.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"quant\":false"), "{body}");
    let (status, body) = request(server.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!(
            "cohortnet_build_info{{simd=\"{active}\",quant=\"off\"}} 1"
        )),
        "build info gauge missing: {body}"
    );
    server.shutdown();
}

#[test]
fn quant_scores_are_reproducible_across_engine_configs() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let configs = [
        EngineConfig {
            max_batch: 1,
            max_delay_us: 0,
            threads: 1,
            queue_cap: 64,
            ..EngineConfig::default()
        },
        EngineConfig {
            max_batch: 8,
            max_delay_us: 1_000,
            threads: 4,
            queue_cap: 64,
            ..EngineConfig::default()
        },
    ];
    let mut reference: Option<String> = None;
    for cfg in configs {
        let server = start(&bundle.snapshot, true, cfg);
        let (status, body) = request(
            server.addr(),
            "POST",
            "/score",
            &score_body(&bundle.examples),
        );
        assert_eq!(status, 200, "{body}");
        match &reference {
            None => reference = Some(body),
            Some(want) => assert_eq!(
                want, &body,
                "quant scores differ across engine configs at max_batch={}",
                cfg.max_batch
            ),
        }
        server.shutdown();
    }
}
