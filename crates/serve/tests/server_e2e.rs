//! Server-level determinism contract: the rendered `/score` prediction of a
//! request is identical whether it is sent alone or batched, whatever the
//! server's `max_batch` / worker-thread configuration.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use cohortnet::infer::ScoreRequest;
use cohortnet::snapshot::load_snapshot;
use cohortnet_serve::{serve, EngineConfig, ServerConfig};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    assert!(
        head.lines()
            .any(|l| l.to_ascii_lowercase().starts_with("x-request-id:")),
        "response lacks X-Request-Id: {head}"
    );
    (status, body)
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_body(examples: &[ScoreRequest]) -> String {
    let instances: Vec<String> = examples
        .iter()
        .map(|e| format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)))
        .collect();
    format!("{{\"instances\":[{}]}}", instances.join(","))
}

fn predictions(body: &str) -> Vec<String> {
    let inner = body
        .strip_prefix("{\"predictions\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .unwrap_or_else(|| panic!("unexpected /score body: {body}"));
    inner
        .split("},{")
        .map(|s| s.trim_matches(['{', '}']).to_string())
        .collect()
}

#[test]
fn score_is_bit_identical_across_batch_and_thread_configs() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let configs = [
        EngineConfig {
            max_batch: 1,
            max_delay_us: 0,
            threads: 1,
            queue_cap: 64,
            ..EngineConfig::default()
        },
        EngineConfig {
            max_batch: 4,
            max_delay_us: 500,
            threads: 2,
            queue_cap: 64,
            ..EngineConfig::default()
        },
        EngineConfig {
            max_batch: 8,
            max_delay_us: 1_000,
            threads: 4,
            queue_cap: 64,
            ..EngineConfig::default()
        },
    ];

    // Reference: every example scored alone on the batch=1 single-thread
    // server; then every other configuration — and the all-at-once batch —
    // must render the same prediction text (text equality here is bit
    // equality: probabilities render via Rust's shortest round-trip float
    // formatting).
    let mut reference: Option<Vec<String>> = None;
    for cfg in configs {
        let loaded = load_snapshot(&bundle.snapshot).expect("snapshot loads");
        let server = serve(
            loaded,
            ServerConfig {
                port: 0,
                engine: cfg,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let addr = server.addr();

        let solo: Vec<String> = bundle
            .examples
            .iter()
            .map(|e| {
                let (status, body) =
                    request(addr, "POST", "/score", &score_body(std::slice::from_ref(e)));
                assert_eq!(status, 200, "solo score: {body}");
                predictions(&body).remove(0)
            })
            .collect();
        let (status, body) = request(addr, "POST", "/score", &score_body(&bundle.examples));
        assert_eq!(status, 200, "batch score: {body}");
        let batched = predictions(&body);
        assert_eq!(batched.len(), bundle.examples.len());
        assert_eq!(
            solo, batched,
            "batched rows differ from solo rows at max_batch={}",
            cfg.max_batch
        );
        match &reference {
            None => reference = Some(solo),
            Some(want) => assert_eq!(
                want, &solo,
                "scores differ across server configs at max_batch={} threads={}",
                cfg.max_batch, cfg.threads
            ),
        }

        server.shutdown();
    }
}

#[test]
fn server_rejects_bad_input_and_serves_introspection() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let loaded = load_snapshot(&bundle.snapshot).expect("snapshot loads");
    let server = serve(
        loaded,
        ServerConfig {
            port: 0,
            engine: EngineConfig::default(),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    // The advertised fingerprint is FNV-1a-64 over the exact snapshot text
    // this server loaded — recomputable by any client holding the artifact.
    let want_fp = format!(
        "{:016x}",
        cohortnet::snapshot::fnv64(bundle.snapshot.as_bytes())
    );
    assert!(
        body.contains(&format!("\"snapshot_fingerprint\":\"{want_fp}\"")),
        "fingerprint {want_fp} missing: {body}"
    );

    let (status, _) = request(addr, "POST", "/score", "{\"instances\":[]}");
    assert_eq!(status, 400);
    let (status, body) = request(
        addr,
        "POST",
        "/score",
        "{\"instances\":[{\"x\":[0.5],\"mask\":[1]}]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(
        body.contains("expected"),
        "error should name the shape: {body}"
    );
    // Per-request isolation: the shape error rides in its own prediction
    // slot, so a mixed batch still scores the valid instance.
    let good = &bundle.examples[0];
    let mixed = format!(
        "{{\"instances\":[{{\"x\":[{}],\"mask\":[{}]}},{{\"x\":[0.5],\"mask\":[1]}}]}}",
        join(&good.x),
        join(&good.mask)
    );
    let (status, body) = request(addr, "POST", "/score", &mixed);
    assert_eq!(status, 200, "mixed batch should partially succeed: {body}");
    let preds = predictions(&body);
    assert_eq!(preds.len(), 2, "{body}");
    assert!(preds[0].contains("\"prob\""), "{body}");
    assert!(preds[1].contains("\"error\""), "{body}");

    let (status, body) = request(addr, "GET", "/cohorts", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"has_cohorts\":true"), "{body}");

    let e = &bundle.examples[0];
    let (status, body) = request(
        addr,
        "POST",
        "/explain",
        &format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"full_prob\""), "{body}");

    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "cohortnet_requests_total",
        "cohortnet_queue_wait_us_bucket",
        "cohortnet_batch_compute_us_bucket",
        "cohortnet_queue_depth",
    ] {
        assert!(body.contains(family), "{family} missing: {body}");
    }

    server.shutdown();
}

#[test]
fn configurable_read_timeout_answers_stalled_clients_with_408() {
    let bundle = cohortnet_serve::demo::demo_bundle();
    let loaded = load_snapshot(&bundle.snapshot).expect("snapshot loads");
    let server = serve(
        loaded,
        ServerConfig {
            port: 0,
            read_timeout_ms: 200,
            engine: EngineConfig::default(),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // The configured timeout is visible on /healthz.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"read_timeout_ms\":200"), "{body}");

    // Stall mid-head: write a partial request and go quiet. The server must
    // answer 408 once the configured timeout elapses — well before the old
    // hard-coded 10s — and free the handler thread.
    let started = std::time::Instant::now();
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(b"POST /score HTTP/1.1\r\nContent-Le")
        .expect("partial write");

    // A concurrent healthy request is served while the stalled one waits.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "stalled client must not block other requests");

    let resp = cohortnet_serve::client::read_response(&mut stalled).expect("408 response");
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "408 took {:?}; the configured 200ms timeout was ignored",
        started.elapsed()
    );

    server.shutdown();
}
