//! Chaos e2e for the streaming server: the three streaming fault sites
//! (`stream.ingest.drop`, `stream.session.evict`, `stream.score`) degrade
//! to typed errors scoped to the faulted session, while every non-faulted
//! session — and the batch `/score` path — stays **bit-identical** to a
//! fault-free reference run. A scoring panic poisons and evicts exactly
//! one session; it can never poison the batching engine, because streaming
//! scores run on the worker thread, not through the batcher.
//!
//! Determinism: single-threaded engine, sequential requests, seeded plan —
//! every chaos decision replays, so the fault schedule below is exact.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};

use cohortnet::snapshot::load_snapshot;
use cohortnet::stream::StreamEvent;
use cohortnet_chaos::{install, ChaosPlan, When};
use cohortnet_ehr::{generate_event_streams, EventStreamConfig};
use cohortnet_serve::demo::{demo_bundle, DemoBundle};
use cohortnet_serve::{serve_stream, EngineConfig, Server, ServerConfig, StreamOptions};

/// Chaos plans are process-global; every test takes this so a plan
/// installed by one cannot steal another's site call indices.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One demo training run shared by every test in this binary.
fn bundle() -> &'static DemoBundle {
    static BUNDLE: OnceLock<DemoBundle> = OnceLock::new();
    BUNDLE.get_or_init(demo_bundle)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn ingest_body(session: &str, events: &[StreamEvent]) -> String {
    let evs: Vec<String> = events
        .iter()
        .map(|e| format!("{{\"f\":{},\"t\":{},\"v\":{}}}", e.feature, e.ts, e.value))
        .collect();
    format!(
        "{{\"session\":\"{session}\",\"events\":[{}],\"score\":false}}",
        evs.join(",")
    )
}

fn start_server() -> Server {
    let loaded = load_snapshot(&bundle().snapshot).expect("snapshot loads");
    serve_stream(
        loaded,
        ServerConfig {
            port: 0,
            engine: EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
        StreamOptions::default(),
    )
    .expect("stream server starts")
}

fn demo_events(n_admissions: usize, seed: u64) -> Vec<Vec<StreamEvent>> {
    generate_event_streams(&EventStreamConfig {
        n_admissions,
        n_features: 20,
        events_per_feature: 3,
        seed,
        ..EventStreamConfig::default()
    })
    .into_iter()
    .map(|s| {
        s.events
            .iter()
            .map(|e| StreamEvent {
                feature: e.feature,
                ts: e.ts,
                value: e.value,
            })
            .collect()
    })
    .collect()
}

/// Reads one counter value from a `/metrics` body.
fn metric_value(metrics_body: &str, family: &str) -> f64 {
    metrics_body
        .lines()
        .find_map(|line| line.strip_prefix(family)?.trim().parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn faulted_sessions_degrade_typed_while_the_rest_stay_bit_identical() {
    let _s = serial();
    let streams = demo_events(3, 0x0dd5);
    let (healthy, victim, evictee) = (&streams[0], &streams[1], &streams[2]);
    let batch_body = {
        let e = &bundle().examples[0];
        let join = |v: &[f32]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"instances\":[{{\"x\":[{}],\"mask\":[{}]}}]}}",
            join(&e.x),
            join(&e.mask)
        )
    };

    // ------------------------------------------------------ reference pass
    let server = start_server();
    let addr = server.addr();
    for (id, events) in [("healthy", healthy), ("evictee", evictee)] {
        let (status, body) = request(addr, "POST", "/ingest", &ingest_body(id, events));
        assert_eq!(status, 200, "reference ingest {id}: {body}");
    }
    let (_, healthy_ref) = request(addr, "POST", "/sessions/healthy/score", "");
    let (_, evictee_ref) = request(addr, "POST", "/sessions/evictee/score", "");
    let (_, batch_ref) = request(addr, "POST", "/score", &batch_body);
    server.shutdown();

    // ---------------------------------------------------------- chaos pass
    // Site call schedule (single-threaded, sequential, so it is exact):
    //   stream.ingest.drop  call 1 → the first healthy ingest bounces 503;
    //   stream.session.evict call 4 → the second evictee ingest gets 410;
    //   stream.score        call 1 → the victim's first score panics.
    let _guard = install(
        ChaosPlan::new(7)
            .site("stream.ingest.drop", When::At(vec![1]), 0)
            .site("stream.session.evict", When::At(vec![4]), 0)
            .site("stream.score", When::At(vec![1]), 0),
    );
    let server = start_server();
    let addr = server.addr();

    // Ingest 1: dropped before any state change — typed 503.
    let (status, body) = request(addr, "POST", "/ingest", &ingest_body("healthy", healthy));
    assert_eq!(status, 503, "chaos drop must answer 503: {body}");
    assert!(body.contains("\"error\""), "untyped drop: {body}");
    // Ingest 2: the retry lands cleanly (the drop left nothing behind).
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("healthy", healthy));
    assert_eq!(status, 200);
    // Ingest 3: the victim's history.
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("victim", victim));
    assert_eq!(status, 200);
    // Ingest 4 builds the evictee; ingest 5 hits the evict site — the
    // session is gone afterwards, with a typed 410 telling the client to
    // re-ingest.
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("evictee", evictee));
    assert_eq!(status, 200);
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        &ingest_body("evictee", &evictee[..1]),
    );
    assert_eq!(status, 410, "chaos evict must answer 410: {body}");
    assert!(body.contains("\"error\""), "untyped evict: {body}");
    let (status, _) = request(addr, "POST", "/sessions/evictee/score", "");
    assert_eq!(status, 404, "evicted session must be gone");

    // Score 1 — wait: that 404 never reached the score site, so the
    // victim's score is still chaos call 1: it panics, poisons and evicts
    // only the victim.
    let (status, body) = request(addr, "POST", "/sessions/victim/score", "");
    assert_eq!(status, 500, "poisoned score must answer 500: {body}");
    assert!(body.contains("\"error\""), "untyped poison: {body}");
    let (status, _) = request(addr, "POST", "/sessions/victim/score", "");
    assert_eq!(status, 404, "poisoned session must be evicted");
    let (_, listing) = request(addr, "GET", "/sessions", "");
    assert!(
        !listing.contains("victim") && !listing.contains("evictee"),
        "faulted sessions must not be listed: {listing}"
    );

    // The healthy session scored after all that chaos is bit-identical to
    // the fault-free reference run.
    let (status, healthy_now) = request(addr, "POST", "/sessions/healthy/score", "");
    assert_eq!(status, 200);
    assert_eq!(
        healthy_now, healthy_ref,
        "healthy session drifted under chaos"
    );

    // The evictee rebuilt from its full history converges too.
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("evictee", evictee));
    assert_eq!(status, 200);
    let (status, evictee_now) = request(addr, "POST", "/sessions/evictee/score", "");
    assert_eq!(status, 200);
    assert_eq!(evictee_now, evictee_ref, "re-ingested evictee drifted");

    // The batch path was never poisoned: same bytes as the reference.
    let (status, batch_now) = request(addr, "POST", "/score", &batch_body);
    assert_eq!(status, 200);
    assert_eq!(
        batch_now, batch_ref,
        "the batcher must stay isolated from session faults"
    );

    // Every site actually fired, and the server accounted for the faults.
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    for family in [
        "cohortnet_chaos_injected_stream_ingest_drop_total ",
        "cohortnet_chaos_injected_stream_session_evict_total ",
        "cohortnet_chaos_injected_stream_score_total ",
    ] {
        assert!(
            metric_value(&metrics, family) >= 1.0,
            "{family} did not fire"
        );
    }
    assert!(metric_value(&metrics, "cohortnet_stream_ingest_dropped_total ") >= 1.0);
    assert!(metric_value(&metrics, "cohortnet_stream_sessions_evicted_total ") >= 2.0);
}
