//! HTTP-level identity and session management for the streaming server
//! ([`cohortnet_serve::serve_stream`]):
//!
//! * `POST /ingest` + `POST /sessions/<id>/score` render **byte-identical**
//!   `/score` output to the batch pipeline recomputed from scratch over the
//!   same event prefix — on the f32 server and the `--quant` server;
//! * `/sessions` listing, explicit `DELETE` eviction, re-ingest rebuild,
//!   and the typed error surface (400/404/405) behave as documented;
//! * the whole batch surface (`/score`, `/healthz`, `/metrics`) is
//!   delegated untouched, and `/metrics` carries the streaming families.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

use cohortnet::snapshot::load_snapshot;
use cohortnet::stream::{batch_reference, StreamConfig, StreamEvent};
use cohortnet_ehr::{generate_event_streams, EventStreamConfig};
use cohortnet_serve::{serve_stream, EngineConfig, ServerConfig, StreamOptions};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// The `/ingest` body for a batch of events (no inline score — the
/// comparison endpoint is `/sessions/<id>/score`).
fn ingest_body(session: &str, events: &[StreamEvent]) -> String {
    let evs: Vec<String> = events
        .iter()
        .map(|e| format!("{{\"f\":{},\"t\":{},\"v\":{}}}", e.feature, e.ts, e.value))
        .collect();
    format!(
        "{{\"session\":\"{session}\",\"events\":[{}],\"score\":false}}",
        evs.join(",")
    )
}

/// One demo training run shared by every test in this binary.
fn bundle() -> &'static cohortnet_serve::demo::DemoBundle {
    static BUNDLE: OnceLock<cohortnet_serve::demo::DemoBundle> = OnceLock::new();
    BUNDLE.get_or_init(cohortnet_serve::demo::demo_bundle)
}

fn start(quant: bool) -> (cohortnet_serve::Server, SocketAddr) {
    let loaded = load_snapshot(&bundle().snapshot).expect("snapshot loads");
    let server = serve_stream(
        loaded,
        ServerConfig {
            port: 0,
            quant,
            engine: EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
        StreamOptions::default(),
    )
    .expect("stream server starts");
    let addr = server.addr();
    (server, addr)
}

fn demo_events(n_admissions: usize, seed: u64) -> Vec<Vec<StreamEvent>> {
    generate_event_streams(&EventStreamConfig {
        n_admissions,
        n_features: 20,
        events_per_feature: 3,
        seed,
        ..EventStreamConfig::default()
    })
    .into_iter()
    .map(|s| {
        s.events
            .iter()
            .map(|e| StreamEvent {
                feature: e.feature,
                ts: e.ts,
                value: e.value,
            })
            .collect()
    })
    .collect()
}

/// Streams events in chunks and, after every chunk, diffs the session's
/// rendered score bytes against `POST /score` on the from-scratch batch
/// oracle — on the same server, so the bytes share one render path.
fn assert_prefix_identity(addr: SocketAddr, quant: bool) {
    let loaded = load_snapshot(&bundle().snapshot).expect("snapshot loads");
    let cfg = StreamConfig {
        time_steps: loaded.time_steps,
        n_features: loaded.scaler.mean.len(),
        horizon_hours: 48.0,
    };
    for (a, events) in demo_events(2, 0xcafe).into_iter().enumerate() {
        let session = format!("adm-{a}");
        let mut sent = 0usize;
        while sent < events.len() {
            let chunk = (events.len() - sent).min(5);
            let (status, body) = request(
                addr,
                "POST",
                "/ingest",
                &ingest_body(&session, &events[sent..sent + chunk]),
            );
            assert_eq!(status, 200, "ingest failed: {body}");
            sent += chunk;

            let (status, stream_bytes) =
                request(addr, "POST", &format!("/sessions/{session}/score"), "");
            assert_eq!(status, 200, "session score failed: {stream_bytes}");

            let oracle = batch_reference(&events[..sent], &cfg, &loaded.scaler);
            let batch_body = format!(
                "{{\"instances\":[{{\"x\":[{}],\"mask\":[{}]}}]}}",
                join(&oracle.x),
                join(&oracle.mask)
            );
            let (status, batch_bytes) = request(addr, "POST", "/score", &batch_body);
            assert_eq!(status, 200, "batch score failed: {batch_bytes}");
            assert_eq!(
                stream_bytes, batch_bytes,
                "admission {a} prefix {sent} (quant={quant}): rendered bytes diverged"
            );
        }
    }
}

#[test]
fn streamed_scores_render_byte_identical_to_batch() {
    let (_server, addr) = start(false);
    assert_prefix_identity(addr, false);

    // The streaming metric families are live on the shared registry.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "cohortnet_stream_events_total",
        "cohortnet_stream_scores_total",
        "cohortnet_stream_staleness_us",
        "cohortnet_stream_probes_full_total",
        "cohortnet_stream_probes_reused_total",
        "cohortnet_stream_sessions_active",
    ] {
        assert!(metrics.contains(family), "metrics lack {family}");
    }
}

#[test]
fn quant_streamed_scores_render_byte_identical_to_batch() {
    let (_server, addr) = start(true);
    assert_prefix_identity(addr, true);
}

#[test]
fn session_lifecycle_and_error_surface() {
    let (_server, addr) = start(false);
    let events = &demo_events(1, 0xfeed)[0];

    // Unknown sessions are typed 404s.
    let (status, _) = request(addr, "POST", "/sessions/nobody/score", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/sessions/nobody", "");
    assert_eq!(status, 404);

    // Ingest with an inline score: the response embeds the prediction.
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        "{\"session\":\"p1\",\"events\":[{\"f\":0,\"t\":1.5,\"v\":37.2}]}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"prediction\""),
        "inline score missing: {body}"
    );
    assert!(body.contains("\"ingested\":1"), "{body}");

    // Typed 400s: malformed body, unknown feature, bad timestamp — none
    // of them perturb the session (events_total stays 1).
    for bad in [
        "{not json",
        "{\"session\":\"p1\",\"events\":[{\"f\":99,\"t\":1,\"v\":1}]}",
        "{\"session\":\"p1\",\"events\":[{\"f\":0,\"t\":-4,\"v\":1}]}",
        "{\"session\":\"p1\",\"events\":[{\"t\":1,\"v\":1}]}",
        "{\"events\":[]}",
    ] {
        let (status, body) = request(addr, "POST", "/ingest", bad);
        assert_eq!(status, 400, "expected 400 for {bad}, got {body}");
        assert!(body.contains("\"error\""), "untyped error: {body}");
    }
    let (status, listing) = request(addr, "GET", "/sessions", "");
    assert_eq!(status, 200);
    assert!(listing.contains("\"events_total\":1"), "{listing}");
    assert!(listing.contains("\"active\":1"), "{listing}");

    // Method guards.
    let (status, _) = request(addr, "GET", "/ingest", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/sessions", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/sessions/p1/score", "");
    assert_eq!(status, 405);

    // Build up a real session, snapshot its rendered score…
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("p2", events));
    assert_eq!(status, 200);
    let (_, before) = request(addr, "POST", "/sessions/p2/score", "");

    // …evict it, and prove re-ingesting the full history rebuilds the
    // session byte-identically (sessions are ephemeral + replayable).
    let (status, body) = request(addr, "DELETE", "/sessions/p2", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"evicted\":true"), "{body}");
    let (status, _) = request(addr, "POST", "/sessions/p2/score", "");
    assert_eq!(status, 404, "evicted session must be gone");
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body("p2", events));
    assert_eq!(status, 200);
    let (_, after) = request(addr, "POST", "/sessions/p2/score", "");
    assert_eq!(before, after, "re-ingested session diverged");

    // The delegated batch surface still answers.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
}
