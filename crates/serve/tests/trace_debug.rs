//! The request-tracing and triage contract: `Server-Timing` is gated on
//! `X-Debug-Timing: 1`, `/debug/{requests,config,trace}` answer with the
//! stage attribution and resolved configuration, scores stay bit-identical
//! with tracing on, and one `/score` exports as a connected cross-thread
//! trace (request span on the worker, batch span on the batcher).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};

use cohortnet::infer::ScoreRequest;
use cohortnet::snapshot::{fnv64, load_snapshot};
use cohortnet_serve::demo::{demo_bundle, DemoBundle};
use cohortnet_serve::json::{self, Json};
use cohortnet_serve::{serve, EngineConfig, Server, ServerConfig};

/// Tracing enable/disable and the span buffer are process-global; tests
/// that toggle or snapshot them serialize here.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One demo training run shared by every test in this binary.
fn bundle() -> &'static DemoBundle {
    static BUNDLE: OnceLock<DemoBundle> = OnceLock::new();
    BUNDLE.get_or_init(demo_bundle)
}

fn boot() -> Server {
    serve(
        load_snapshot(&bundle().snapshot).expect("snapshot loads"),
        ServerConfig {
            port: 0,
            engine: EngineConfig {
                max_batch: 4,
                max_delay_us: 200,
                threads: 2,
                queue_cap: 64,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// Raw request returning (status, response head, body) so header presence
/// can be asserted. `extra` lines are injected verbatim into the head.
fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, path, "", body);
    (status, body)
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_body(examples: &[ScoreRequest]) -> String {
    let instances: Vec<String> = examples
        .iter()
        .map(|e| format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)))
        .collect();
    format!("{{\"instances\":[{}]}}", instances.join(","))
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    let prefix = format!("{}:", name.to_ascii_lowercase());
    head.lines()
        .find(|l| l.to_ascii_lowercase().starts_with(&prefix))
        .map(|l| l[prefix.len()..].trim())
}

#[test]
fn server_timing_header_is_gated_on_debug_timing() {
    let server = boot();
    let addr = server.addr();
    let body = score_body(&bundle().examples);

    let (status, head, _) = request_full(addr, "POST", "/score", "", &body);
    assert_eq!(status, 200);
    assert!(
        header(&head, "Server-Timing").is_none(),
        "Server-Timing must be absent without X-Debug-Timing: {head}"
    );

    let (status, head, _) = request_full(addr, "POST", "/score", "X-Debug-Timing: 1\r\n", &body);
    assert_eq!(status, 200);
    let timing = header(&head, "Server-Timing")
        .unwrap_or_else(|| panic!("no Server-Timing with X-Debug-Timing: {head}"));
    for stage in [
        "accept;dur=",
        "queue;dur=",
        "batch_wait;dur=",
        "compute;dur=",
        "batch;desc=",
    ] {
        assert!(timing.contains(stage), "{stage} missing from: {timing}");
    }

    server.shutdown();
}

#[test]
fn debug_requests_reports_stage_timings_and_views() {
    let server = boot();
    let addr = server.addr();
    let body = score_body(&bundle().examples);
    for _ in 0..3 {
        let (status, resp) = request(addr, "POST", "/score", &body);
        assert_eq!(status, 200, "{resp}");
    }
    let (status, resp) = request(addr, "POST", "/score", "{\"instances\":[]}");
    assert_eq!(status, 400, "{resp}");

    let (status, resp) = request(addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200, "{resp}");
    let parsed = json::parse(&resp).expect("debug requests parses");
    assert!(parsed.get("total").and_then(Json::as_f64).unwrap_or(0.0) >= 4.0);
    let rows = parsed
        .get("requests")
        .and_then(Json::as_arr)
        .expect("requests array");
    let scored = rows
        .iter()
        .find(|r| {
            r.get("route").and_then(Json::as_str) == Some("/score")
                && r.get("status").and_then(Json::as_f64) == Some(200.0)
        })
        .unwrap_or_else(|| panic!("no scored /score record: {resp}"));
    let f = |k: &str| scored.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
    assert!(f("total_us") > 0.0, "{resp}");
    assert!(f("compute_us") >= 0.0, "{resp}");
    assert!(f("batch_size") >= 1.0, "{resp}");
    assert_eq!(f("replica"), -1.0, "single server attributes no replica");
    assert!(
        scored
            .get("rid")
            .and_then(Json::as_str)
            .is_some_and(|r| !r.is_empty()),
        "{resp}"
    );
    assert!(
        scored
            .get("trace")
            .and_then(Json::as_str)
            .is_some_and(|t| t.len() == 32),
        "record lacks a trace id: {resp}"
    );

    // The slowest view is sorted by total and respects the n cap.
    let (status, resp) = request(addr, "GET", "/debug/requests?view=slowest&n=2", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&resp).expect("slowest view parses");
    let totals: Vec<f64> = parsed
        .get("requests")
        .and_then(Json::as_arr)
        .expect("requests array")
        .iter()
        .filter_map(|r| r.get("total_us").and_then(Json::as_f64))
        .collect();
    assert!(totals.len() <= 2, "{resp}");
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "not sorted: {resp}"
    );

    // The errors view retains only the 400.
    let (status, resp) = request(addr, "GET", "/debug/requests?view=errors", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&resp).expect("errors view parses");
    let statuses: Vec<f64> = parsed
        .get("requests")
        .and_then(Json::as_arr)
        .expect("requests array")
        .iter()
        .filter_map(|r| r.get("status").and_then(Json::as_f64))
        .collect();
    assert!(!statuses.is_empty(), "400 missing from errors view: {resp}");
    assert!(statuses.iter().all(|&s| s >= 400.0), "{resp}");

    server.shutdown();
}

#[test]
fn debug_config_reports_resolved_flags_and_fingerprint() {
    let server = boot();
    let addr = server.addr();

    let (status, resp) = request(addr, "GET", "/debug/config", "");
    assert_eq!(status, 200, "{resp}");
    let parsed = json::parse(&resp).expect("debug config parses");
    let want_fp = format!("{:016x}", fnv64(bundle().snapshot.as_bytes()));
    assert_eq!(
        parsed.get("snapshot_fingerprint").and_then(Json::as_str),
        Some(want_fp.as_str()),
        "{resp}"
    );
    assert!(
        parsed
            .get("simd_backend")
            .and_then(Json::as_str)
            .is_some_and(|b| !b.is_empty()),
        "{resp}"
    );
    assert_eq!(parsed.get("max_batch").and_then(Json::as_f64), Some(4.0));
    assert_eq!(
        parsed.get("engine_threads").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(parsed.get("quant").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed.get("flight_slots").and_then(Json::as_f64),
        Some(cohortnet_obs::flight::FLIGHT_SLOTS as f64)
    );

    server.shutdown();
}

#[test]
fn score_bytes_bit_identical_with_tracing_on_and_trace_connects_threads() {
    let _guard = serial();
    cohortnet_obs::trace::disable();
    cohortnet_obs::trace::clear();

    let server = boot();
    let addr = server.addr();
    let body = score_body(&bundle().examples);

    let (status, cold) = request(addr, "POST", "/score", &body);
    assert_eq!(status, 200, "{cold}");

    // Flip tracing on through the triage surface itself.
    let (status, resp) = request(addr, "GET", "/debug/trace?on", "");
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"tracing\":true"), "{resp}");
    assert!(cohortnet_obs::trace::enabled());

    let (status, traced) = request(addr, "POST", "/score", &body);
    assert_eq!(status, 200, "{traced}");
    assert_eq!(
        cold, traced,
        "/score bytes must be bit-identical with tracing on"
    );

    let (status, resp) = request(addr, "GET", "/debug/trace?off", "");
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"tracing\":false"), "{resp}");
    assert!(!cohortnet_obs::trace::enabled());
    server.shutdown();

    // The traced request came out as one connected flame: the batcher
    // thread's serve.batch span has the worker thread's serve.request span
    // as an ancestor, linked by the explicit context baton.
    let spans = cohortnet_obs::trace::snapshot();
    let by_id: std::collections::HashMap<u64, &cohortnet_obs::trace::Event> =
        spans.iter().map(|e| (e.id, e)).collect();
    let mut connected = false;
    for batch in spans.iter().filter(|e| e.name == "serve.batch") {
        let mut cur = batch.parent;
        while cur != 0 {
            let Some(p) = by_id.get(&cur) else { break };
            if p.name == "serve.request" && p.tid != batch.tid {
                connected = true;
            }
            cur = p.parent;
        }
    }
    assert!(
        connected,
        "no serve.batch span with a serve.request ancestor on another thread; \
         span names: {:?}",
        spans.iter().map(|e| e.name).collect::<Vec<_>>()
    );
    cohortnet_obs::trace::clear();
}
