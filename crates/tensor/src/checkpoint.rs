//! Parameter checkpointing.
//!
//! Serialises a [`ParamStore`] to a line-oriented text format so trained
//! models can be saved and reloaded without retraining (the architecture is
//! reconstructed by the caller; parameters are matched by name, so the
//! rebuild must register the same parameters in the same order).
//!
//! Format:
//!
//! ```text
//! #cohortnet-params v1
//! param <name> <rows> <cols> <v0> <v1> ...
//! ```

use crate::matrix::Matrix;
use crate::param::ParamStore;
use std::fmt::Write as _;

/// Errors raised while parsing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing or wrong header.
    BadHeader,
    /// Malformed record at a 1-based line number.
    BadRecord(usize),
    /// The checkpoint does not match the store's registered parameters.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "missing #cohortnet-params v1 header"),
            CheckpointError::BadRecord(n) => write!(f, "malformed record at line {n}"),
            CheckpointError::Mismatch(what) => write!(f, "checkpoint mismatch: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises all parameter values (gradients are not persisted).
pub fn save_params(store: &ParamStore) -> String {
    let mut out = String::from("#cohortnet-params v1\n");
    for e in store.entries() {
        let _ = write!(
            out,
            "param\t{}\t{}\t{}",
            e.name,
            e.value.rows(),
            e.value.cols()
        );
        for v in e.value.as_slice() {
            let _ = write!(out, "\t{v}");
        }
        out.push('\n');
    }
    out
}

/// Loads values into an already-constructed store (same architecture).
///
/// Parameters are matched positionally and validated by name and shape, so
/// drift between the saved and reconstructed architecture is an error
/// rather than silent corruption.
pub fn load_params(store: &mut ParamStore, text: &str) -> Result<(), CheckpointError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == "#cohortnet-params v1" => {}
        _ => return Err(CheckpointError::BadHeader),
    }
    let mut parsed: Vec<(String, Matrix)> = Vec::new();
    for (idx, line) in lines {
        let n = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        if parts.next() != Some("param") {
            return Err(CheckpointError::BadRecord(n));
        }
        let name = parts
            .next()
            .ok_or(CheckpointError::BadRecord(n))?
            .to_string();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::BadRecord(n))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::BadRecord(n))?;
        let values: Result<Vec<f32>, _> = parts
            .map(|s| s.parse::<f32>().map_err(|_| CheckpointError::BadRecord(n)))
            .collect();
        let values = values?;
        if values.len() != rows * cols {
            return Err(CheckpointError::BadRecord(n));
        }
        parsed.push((name, Matrix::from_vec(rows, cols, values)));
    }
    if parsed.len() != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, store has {}",
            parsed.len(),
            store.len()
        )));
    }
    // Validate before mutating anything.
    for ((name, value), entry) in parsed.iter().zip(store.entries()) {
        if *name != entry.name {
            return Err(CheckpointError::Mismatch(format!(
                "parameter name {name:?} does not match registered {:?}",
                entry.name
            )));
        }
        if value.shape() != entry.value.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name}: shape {:?} vs registered {:?}",
                value.shape(),
                entry.value.shape()
            )));
        }
    }
    for ((_, value), entry) in parsed.into_iter().zip(store.entries_mut()) {
        entry.value = value;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store() -> ParamStore {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        ps.register("layer.w", init::xavier_uniform(&mut rng, 3, 4));
        ps.register("layer.b", Matrix::zeros(1, 4));
        ps
    }

    #[test]
    fn save_load_round_trip() {
        let original = store();
        let text = save_params(&original);
        let mut fresh = store(); // same architecture, different values
        fresh.value_mut(crate::param::ParamId(0)).fill_zero();
        load_params(&mut fresh, &text).unwrap();
        for (a, b) in original.entries().zip(fresh.entries()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn rejects_wrong_architecture() {
        let original = store();
        let text = save_params(&original);
        let mut other = ParamStore::new();
        other.register("layer.w", Matrix::zeros(3, 4));
        assert!(matches!(
            load_params(&mut other, &text),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_renamed_param() {
        let original = store();
        let text = save_params(&original).replace("layer.b", "layer.bias");
        let mut fresh = store();
        assert!(matches!(
            load_params(&mut fresh, &text),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_bad_header_and_records() {
        let mut fresh = store();
        assert_eq!(
            load_params(&mut fresh, "junk"),
            Err(CheckpointError::BadHeader)
        );
        let text = "#cohortnet-params v1\nparam\tw\t2\t2\t1.0\n"; // 1 value for 2x2
        assert!(matches!(
            load_params(&mut fresh, text),
            Err(CheckpointError::BadRecord(2))
        ));
    }

    #[test]
    fn failed_load_leaves_store_untouched() {
        let mut fresh = store();
        let before: Vec<Matrix> = fresh.entries().map(|e| e.value.clone()).collect();
        let text = save_params(&store()).replace("layer.b", "layer.bias");
        let _ = load_params(&mut fresh, &text);
        for (b, e) in before.iter().zip(fresh.entries()) {
            assert_eq!(*b, e.value);
        }
    }
}
