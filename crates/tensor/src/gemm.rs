//! Blocked, register-tiled f32 GEMM — the single kernel entry point behind
//! every matrix product in the workspace.
//!
//! [`gemm_into`] computes `C (+)= op(A) · op(B)` where each operand is
//! optionally transposed *logically* (no transposed copy is ever
//! materialised). The four transpose variants (NN, TN, NT, TT) share one
//! dispatch, so `Matrix::matmul`, `matmul_acc`, and the transpose-fused
//! backward products (`Aᵀ·B`, `A·Bᵀ`) all have a single owner.
//!
//! # Determinism contract
//!
//! Every output element is produced by exactly one accumulation chain that
//! adds the `k` terms in strictly increasing `k` order, starting from the
//! element's prior value (zero when not accumulating):
//!
//! ```text
//! c_ij = ((((c0 + a_i0·b_0j) + a_i1·b_1j) + …) + a_i,K-1·b_K-1,j)
//! ```
//!
//! There is no K-blocking of partial sums, no FMA contraction, and no
//! per-element sparsity branch, so the blocked/packed path, the small-matrix
//! path, and a naive branch-free triple loop all produce bit-identical
//! results. Parallelism only ever splits the *output rows* into disjoint
//! blocks — each element still has one owner and one chain — so results are
//! bit-identical for every thread count. This mirrors the discovery runtime's
//! determinism contract and is what lets data-parallel training reproduce the
//! sequential loss trajectory exactly.
//!
//! # Kernel layout
//!
//! The blocked path packs `op(B)` once into K-major `NR`-wide column panels
//! and walks the output in `MR x NR` register tiles; `op(A)` is packed per
//! `MR`-row strip into a K-major tile so the micro-kernel's inner loop is a
//! pure streaming multiply-add over two contiguous buffers. The micro-kernel
//! and the panel width `NR` come from [`crate::simd`]'s runtime-dispatched
//! backend (AVX2 uses 16-wide panels, SSE2/scalar 8-wide); every backend
//! honours the same per-element chain, so the choice is invisible in the
//! output bits. Small products skip packing entirely and use cache-friendly
//! loop orders chosen per transpose variant (the chain order is the same
//! either way).

use crate::matrix::Matrix;
use crate::simd::{self, GemmSpec, MR};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Output rows handed to one parallel task (multiple of `MR`).
const ROW_BLOCK: usize = 64;
/// Below this many multiply-adds the packed path costs more than it saves.
const PACK_MIN_WORK: usize = 8 * 1024;
/// Below this many multiply-adds threading costs more than it saves.
const PAR_MIN_WORK: usize = 256 * 1024;

/// Worker threads GEMM may use: 0 = auto (hardware), 1 = sequential.
static GEMM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker-thread budget for subsequent GEMM calls (process-wide).
///
/// `0` means "use the hardware parallelism", `1` (the default) keeps GEMM
/// sequential — the right setting whenever an outer layer (minibatch shards,
/// discovery chunks) already owns the threads. Results are bit-identical for
/// every setting; this knob only trades wall-clock.
pub fn set_gemm_threads(n: usize) {
    GEMM_THREADS.store(n, Ordering::Relaxed);
}

/// Current GEMM worker-thread budget (see [`set_gemm_threads`]).
pub fn gemm_threads() -> usize {
    GEMM_THREADS.load(Ordering::Relaxed)
}

#[inline]
fn op_shape(m: &Matrix, transposed: bool) -> (usize, usize) {
    if transposed {
        (m.cols(), m.rows())
    } else {
        (m.rows(), m.cols())
    }
}

/// `C (+)= op(A) · op(B)` — the one kernel entry point.
///
/// `ta` / `tb` select the logical transpose of each operand; `accumulate`
/// chooses between `C +=` and `C =`. See the module docs for the determinism
/// contract.
///
/// # Panics
/// Panics on inner-dimension or output-shape mismatch.
pub fn gemm_into(ta: bool, tb: bool, a: &Matrix, b: &Matrix, out: &mut Matrix, accumulate: bool) {
    let (m, ka) = op_shape(a, ta);
    let (kb, n) = op_shape(b, tb);
    assert_eq!(
        ka, kb,
        "matmul shape mismatch: op(A) is {}x{}, op(B) is {}x{}",
        m, ka, kb, n
    );
    assert_eq!(
        out.shape(),
        (m, n),
        "gemm output shape: expected {}x{}, got {}x{}",
        m,
        n,
        out.rows(),
        out.cols()
    );
    if !accumulate {
        out.fill_zero();
    }
    if m == 0 || n == 0 || ka == 0 {
        return;
    }

    let work = m * n * ka;
    if work < PACK_MIN_WORK {
        gemm_small(ta, tb, a, b, out);
        return;
    }

    // Pack op(B) once into K-major panels (width set by the active SIMD
    // backend), shared by every row block.
    let spec = simd::gemm_spec();
    let packed_b = pack_b(b, tb, ka, n, spec.nr);

    let threads = if work >= PAR_MIN_WORK {
        let blocks = m.div_ceil(ROW_BLOCK);
        cohortnet_parallel::resolve_threads(gemm_threads(), blocks)
    } else {
        1
    };

    let row_chunk = ROW_BLOCK * n;
    if threads <= 1 {
        for (block, chunk) in out.as_mut_slice().chunks_mut(row_chunk).enumerate() {
            gemm_row_block(ta, a, &packed_b, chunk, block * ROW_BLOCK, n, ka, spec);
        }
    } else {
        let packed_b = &packed_b;
        cohortnet_parallel::par_chunks_mut(
            threads,
            out.as_mut_slice(),
            row_chunk,
            |block, chunk| gemm_row_block(ta, a, packed_b, chunk, block * ROW_BLOCK, n, ka, spec),
        );
    }
}

/// Packs `op(B)` (K x n) into ceil(n/panel_nr) panels, each K-major and
/// `panel_nr` floats wide, zero-padded on the right edge. Panel `p` holds
/// columns `p*panel_nr .. (p+1)*panel_nr`; within a panel, the `k`-th row of
/// `panel_nr` values is contiguous, so the micro-kernel streams it with unit
/// stride. The width comes from the active backend's [`GemmSpec`]; packing
/// layout never affects the per-element chains, so backends with different
/// widths remain bit-identical.
fn pack_b(b: &Matrix, tb: bool, k_dim: usize, n: usize, panel_nr: usize) -> Vec<f32> {
    let panels = n.div_ceil(panel_nr);
    let mut packed = vec![0.0f32; panels * k_dim * panel_nr];
    for p in 0..panels {
        let j0 = p * panel_nr;
        let nr = panel_nr.min(n - j0);
        let panel = &mut packed[p * k_dim * panel_nr..(p + 1) * k_dim * panel_nr];
        if tb {
            // op(B)[k][j] = B[j][k]: walk B rows j0..j0+nr once each.
            for j in 0..nr {
                let src = b.row(j0 + j);
                for k in 0..k_dim {
                    panel[k * panel_nr + j] = src[k];
                }
            }
        } else {
            for k in 0..k_dim {
                let src = &b.row(k)[j0..j0 + nr];
                panel[k * panel_nr..k * panel_nr + nr].copy_from_slice(src);
            }
        }
    }
    packed
}

/// Computes one ROW_BLOCK-rows slice of the output against all packed panels.
/// `chunk` is the row-major output storage for rows `i0 ..` (its length
/// determines how many rows this block really has).
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    ta: bool,
    a: &Matrix,
    packed_b: &[f32],
    chunk: &mut [f32],
    i0: usize,
    n: usize,
    k_dim: usize,
    spec: GemmSpec,
) {
    debug_assert_eq!(chunk.len() % n, 0);
    let block_rows = chunk.len() / n;
    let panel_nr = spec.nr;
    let panels = n.div_ceil(panel_nr);
    let mut a_tile = vec![0.0f32; k_dim * MR];
    let mut strip = 0;
    while strip < block_rows {
        let mr = MR.min(block_rows - strip);
        pack_a_strip(a, ta, i0 + strip, mr, k_dim, &mut a_tile);
        for p in 0..panels {
            let j0 = p * panel_nr;
            let nr = panel_nr.min(n - j0);
            let panel = &packed_b[p * k_dim * panel_nr..(p + 1) * k_dim * panel_nr];
            (spec.kernel)(
                k_dim,
                &a_tile,
                panel,
                &mut chunk[strip * n + j0..],
                n,
                mr,
                nr,
            );
        }
        strip += MR;
    }
}

/// Packs `mr` rows of `op(A)` starting at row `i0` into a K-major MR-wide
/// tile (`tile[k*MR + i] = op(A)[i0+i][k]`), zero-padding unused rows.
fn pack_a_strip(a: &Matrix, ta: bool, i0: usize, mr: usize, k_dim: usize, tile: &mut [f32]) {
    debug_assert!(tile.len() >= k_dim * MR);
    if ta {
        // op(A)[i][k] = A[k][i]: walk A rows (= k index) once each.
        for k in 0..k_dim {
            let src = &a.row(k)[i0..i0 + mr];
            let dst = &mut tile[k * MR..k * MR + MR];
            dst[..mr].copy_from_slice(src);
            dst[mr..].fill(0.0);
        }
    } else {
        for k in 0..k_dim {
            let dst = &mut tile[k * MR..k * MR + MR];
            for i in 0..mr {
                dst[i] = a.row(i0 + i)[k];
            }
            dst[mr..].fill(0.0);
        }
    }
}

/// Unpacked path for small products: per-variant loop orders that keep the
/// inner loop contiguous where possible. Accumulation order per element is
/// identical to the packed path (increasing k, starting from the prior
/// value), so the two paths are bit-identical.
fn gemm_small(ta: bool, tb: bool, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k_dim) = op_shape(a, ta);
    let n = op_shape(b, tb).1;
    match (ta, tb) {
        (false, false) => {
            // i-k-j: stream A row i and B row k. No `a_ik == 0.0` skip —
            // the branch costs more than the multiply on dense data and
            // breaks chain-identity with the packed path for signed zeros.
            for i in 0..m {
                let a_row = a.row(i);
                let out_row = out.row_mut(i);
                for (k, &a_ik) in a_row.iter().enumerate() {
                    let b_row = b.row(k);
                    for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        }
        (true, false) => {
            // Aᵀ·B, k-i-j: stream A row k (holding op(A) column k entries)
            // and B row k; k outer keeps every element's chain k-increasing.
            for k in 0..k_dim {
                let a_row = a.row(k);
                let b_row = b.row(k);
                for i in 0..m {
                    let a_ik = a_row[i];
                    let out_row = out.row_mut(i);
                    for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        }
        (false, true) => {
            // A·Bᵀ, i-j-k: each element is a dot of two contiguous rows.
            for i in 0..m {
                let a_row = a.row(i);
                for j in 0..n {
                    let b_row = b.row(j);
                    let o = &mut out.row_mut(i)[j];
                    let mut s = *o;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        s += x * y;
                    }
                    *o = s;
                }
            }
        }
        (true, true) => {
            // Aᵀ·Bᵀ: rare (completeness only) — direct indexing.
            for i in 0..m {
                for j in 0..n {
                    let b_row = b.row(j);
                    let o = &mut out.row_mut(i)[j];
                    let mut s = *o;
                    for k in 0..k_dim {
                        s += a.row(k)[i] * b_row[k];
                    }
                    *o = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Branch-free naive reference: the chain every path must match exactly.
    fn naive(ta: bool, tb: bool, a: &Matrix, b: &Matrix, init: Option<&Matrix>) -> Matrix {
        let (m, k_dim) = op_shape(a, ta);
        let (_, n) = op_shape(b, tb);
        let mut out = match init {
            Some(c) => c.clone(),
            None => Matrix::zeros(m, n),
        };
        for i in 0..m {
            for j in 0..n {
                let mut s = out[(i, j)];
                for k in 0..k_dim {
                    let a_ik = if ta { a[(k, i)] } else { a[(i, k)] };
                    let b_kj = if tb { b[(j, k)] } else { b[(k, j)] };
                    s += a_ik * b_kj;
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-2.0..2.0))
    }

    fn assert_bits_equal(got: &Matrix, want: &Matrix, ctx: &str) {
        assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
        for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{ctx}: element {idx} differs: {g} vs {w}"
            );
        }
    }

    #[test]
    fn all_variants_match_naive_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // Sizes straddle both the small-path and packed-path thresholds and
        // exercise ragged tile edges (non-multiples of MR/NR).
        for &(m, k_dim, n) in &[(1, 1, 1), (3, 5, 2), (7, 9, 11), (33, 17, 29), (64, 40, 50)] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = if ta {
                    random_matrix(&mut rng, k_dim, m)
                } else {
                    random_matrix(&mut rng, m, k_dim)
                };
                let b = if tb {
                    random_matrix(&mut rng, n, k_dim)
                } else {
                    random_matrix(&mut rng, k_dim, n)
                };
                let mut out = Matrix::zeros(m, n);
                gemm_into(ta, tb, &a, &b, &mut out, false);
                let want = naive(ta, tb, &a, &b, None);
                assert_bits_equal(&out, &want, &format!("{m}x{k_dim}x{n} ta={ta} tb={tb}"));

                // Accumulating variant: chain must start from the prior value.
                let init = random_matrix(&mut rng, m, n);
                let mut out = init.clone();
                gemm_into(ta, tb, &a, &b, &mut out, true);
                let want = naive(ta, tb, &a, &b, Some(&init));
                assert_bits_equal(&out, &want, &format!("acc {m}x{k_dim}x{n} ta={ta} tb={tb}"));
            }
        }
    }

    #[test]
    fn packed_path_matches_naive_on_large_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, 150, 70);
        let b = random_matrix(&mut rng, 70, 90);
        let mut out = Matrix::zeros(150, 90);
        gemm_into(false, false, &a, &b, &mut out, false);
        assert_bits_equal(&out, &naive(false, false, &a, &b, None), "packed 150x70x90");
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 200, 80);
        let b = random_matrix(&mut rng, 80, 96);
        let mut reference = Matrix::zeros(200, 96);
        set_gemm_threads(1);
        gemm_into(false, false, &a, &b, &mut reference, false);
        for threads in [2, 4, 8] {
            set_gemm_threads(threads);
            let mut out = Matrix::zeros(200, 96);
            gemm_into(false, false, &a, &b, &mut out, false);
            assert_bits_equal(&out, &reference, &format!("threads={threads}"));
        }
        set_gemm_threads(1);
    }

    #[test]
    fn every_backend_matches_naive_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        // Large enough for the packed path, ragged against both the 8-wide
        // and 16-wide panel edges.
        let a = random_matrix(&mut rng, 70, 45);
        let b = random_matrix(&mut rng, 45, 37);
        let want = naive(false, false, &a, &b, None);
        let before = crate::simd::active();
        for backend in crate::simd::supported_backends() {
            assert!(crate::simd::set_backend(backend));
            let mut out = Matrix::zeros(70, 37);
            gemm_into(false, false, &a, &b, &mut out, false);
            assert_bits_equal(&out, &want, &format!("backend={}", backend.name()));
        }
        crate::simd::set_backend(before);
    }

    #[test]
    fn signed_zero_columns_stay_branch_free() {
        // A zero in A must still contribute `0.0 * b` to the chain: with the
        // old sparsity skip, (-0.0) + 0.0*b = -0.0 vs skipped = -0.0 is fine
        // but 0-chain prefixes differ once mixed signs appear. Lock the
        // branch-free behaviour down with exact bits.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![-0.0, -0.0]);
        let mut out = Matrix::zeros(1, 1);
        gemm_into(false, false, &a, &b, &mut out, false);
        // 0.0 + 0.0*(-0.0) + 1.0*(-0.0) = 0.0 + 0.0 + (-0.0) = 0.0
        assert_eq!(out[(0, 0)].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn empty_inner_dim_is_identity_for_accumulate() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut out = Matrix::full(2, 3, 7.0);
        gemm_into(false, false, &a, &b, &mut out, true);
        assert!(out.as_slice().iter().all(|&x| x == 7.0));
        gemm_into(false, false, &a, &b, &mut out, false);
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }
}
