//! Finite-difference gradient checking.
//!
//! Used by tests (including property tests) to validate every backward rule
//! on the [`crate::tape::Tape`] against a central-difference numerical
//! gradient.

use crate::matrix::Matrix;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Builds the graph with `build`, evaluates the scalar loss, and compares the
/// analytic gradient of every parameter against central differences.
///
/// Returns the maximum absolute difference found; asserts nothing itself.
///
/// `build` receives a fresh tape plus the store and must return the scalar
/// loss node (`1 x 1`).
pub fn max_grad_error(
    store: &mut ParamStore,
    eps: f32,
    build: impl Fn(&mut Tape, &ParamStore) -> Var,
) -> f32 {
    // Analytic gradients.
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    assert_eq!(tape.value(loss).shape(), (1, 1), "loss must be scalar");
    tape.backward(loss);
    store.zero_grads();
    tape.flush_grads(store);

    let ids: Vec<ParamId> = (0..store.len()).map(crate::param::ParamId).collect();
    let mut max_err = 0.0f32;
    for id in ids {
        let (rows, cols) = store.value(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(id)[(r, c)];
                store.value_mut(id)[(r, c)] = orig + eps;
                let plus = eval(store, &build);
                store.value_mut(id)[(r, c)] = orig - eps;
                let minus = eval(store, &build);
                store.value_mut(id)[(r, c)] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = store.grad(id)[(r, c)];
                let err = (numeric - analytic).abs();
                if err > max_err {
                    max_err = err;
                }
            }
        }
    }
    max_err
}

fn eval(store: &ParamStore, build: &impl Fn(&mut Tape, &ParamStore) -> Var) -> f32 {
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.value(loss)[(0, 0)]
}

/// Convenience constant-input helper for tests.
pub fn constant(t: &mut Tape, rows: usize, cols: usize, data: &[f32]) -> Var {
    t.constant(Matrix::from_vec(rows, cols, data.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Activation, GruCell, Linear, LstmCell, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f32 = 2e-2; // f32 central differences are noisy; rules are exact.

    #[test]
    fn gradcheck_linear_bce() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(17);
        let lin = Linear::new(&mut ps, &mut rng, "l", 3, 2);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let x = constant(t, 2, 3, &[0.5, -0.2, 0.1, 0.9, 0.3, -0.7]);
            let y = lin.forward(t, ps, x);
            t.bce_with_logits(y, Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]))
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_mlp_tanh() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(23);
        let mlp = Mlp::new(
            &mut ps,
            &mut rng,
            "m",
            &[2, 4, 1],
            Activation::Tanh,
            Activation::Identity,
        );
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let x = constant(t, 3, 2, &[0.1, 0.4, -0.3, 0.8, 0.5, -0.9]);
            let y = mlp.forward(t, ps, x);
            t.mse(y, Matrix::from_vec(3, 1, vec![0.2, -0.1, 0.7]))
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_gru_two_steps() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(29);
        let cell = GruCell::new(&mut ps, &mut rng, "g", 2, 3);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let h0 = cell.init_state(t, 2);
            let x1 = constant(t, 2, 2, &[0.3, -0.1, 0.6, 0.2]);
            let x2 = constant(t, 2, 2, &[-0.4, 0.5, 0.1, -0.2]);
            let h1 = cell.step(t, ps, x1, h0);
            let h2 = cell.step(t, ps, x2, h1);
            t.mean_all(h2)
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_lstm_two_steps() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(31);
        let cell = LstmCell::new(&mut ps, &mut rng, "l", 2, 3);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let s0 = cell.init_state(t, 1);
            let x1 = constant(t, 1, 2, &[0.3, -0.6]);
            let x2 = constant(t, 1, 2, &[0.9, 0.4]);
            let s1 = cell.step(t, ps, x1, s0);
            let s2 = cell.step(t, ps, x2, s1);
            t.mean_all(s2.h)
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_softmax_attention_pattern() {
        // Mirrors the attention pattern used by Dipole/CEM: scores -> softmax
        // -> weighted sum via mul_col_broadcast.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(37);
        let score = Linear::new(&mut ps, &mut rng, "s", 3, 1);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let h1 = constant(t, 2, 3, &[0.1, 0.2, 0.3, -0.1, 0.5, 0.0]);
            let h2 = constant(t, 2, 3, &[0.7, -0.2, 0.4, 0.3, 0.1, -0.6]);
            let s1 = score.forward(t, ps, h1);
            let s2 = score.forward(t, ps, h2);
            let scores = t.concat_cols(&[s1, s2]);
            let attn = t.softmax_rows(scores);
            let a1 = t.slice_cols(attn, 0, 1);
            let a2 = t.slice_cols(attn, 1, 2);
            let w1 = t.mul_col_broadcast(h1, a1);
            let w2 = t.mul_col_broadcast(h2, a2);
            let ctx = t.add(w1, w2);
            t.mean_all(ctx)
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_remaining_ops() {
        // Covers Sub, SumRows, SumCols, Scale, AddScalar, Relu and Mse in
        // one composite graph so every backward rule is exercised.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(43);
        let lin = Linear::new(&mut ps, &mut rng, "l", 2, 3);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let x = constant(t, 2, 2, &[0.4, -0.3, 0.7, 0.1]);
            let y = lin.forward(t, ps, x);
            let r = t.relu(y);
            let shifted = t.add_scalar(r, -0.2);
            let scaled = t.scale(shifted, 1.7);
            let neg = t.sub(scaled, y);
            let col = t.sum_cols(neg);
            let row = t.sum_rows(col);
            t.mse(row, Matrix::from_vec(1, 1, vec![0.3]))
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn gradcheck_fused_gate_kernels() {
        // The fused GateAct (σ and tanh) and GruBlend ops, exercised directly
        // with every operand on the parameter path so all three gradients
        // (both summands and the bias) are checked.
        let mut ps = ParamStore::new();
        let a = ps.register(
            "a",
            Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.7, -0.4]),
        );
        let b = ps.register(
            "b",
            Matrix::from_vec(2, 3, vec![-0.1, 0.4, 0.2, -0.6, 0.3, 0.8]),
        );
        let bias = ps.register("bias", Matrix::from_vec(1, 3, vec![0.05, -0.3, 0.2]));
        let h = ps.register(
            "h",
            Matrix::from_vec(2, 3, vec![0.6, -0.5, 0.1, 0.2, -0.8, 0.4]),
        );
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let av = t.param(ps, a);
            let bv = t.param(ps, b);
            let biasv = t.param(ps, bias);
            let hv = t.param(ps, h);
            let z = t.gate_sigmoid(av, bv, biasv);
            let cand = t.gate_tanh(bv, av, biasv);
            let blended = t.gru_blend(z, hv, cand);
            t.mean_all(blended)
        });
        assert!(err < TOL, "max grad err {err}");
    }

    #[test]
    fn fused_gate_matches_unfused_chain() {
        // Same inputs through the fused node and the three-op chain it
        // replaces: values and input gradients must agree.
        let run = |fused: bool| -> (Matrix, Matrix) {
            let mut t = Tape::new();
            let a = constant(&mut t, 2, 2, &[0.4, -1.2, 0.9, 0.3]);
            let b = constant(&mut t, 2, 2, &[-0.7, 0.5, 0.2, -0.1]);
            let bias = constant(&mut t, 1, 2, &[0.3, -0.6]);
            let y = if fused {
                t.gate_sigmoid(a, b, bias)
            } else {
                let s = t.add(a, b);
                let s = t.add_row_broadcast(s, bias);
                t.sigmoid(s)
            };
            let l = t.mean_all(y);
            t.backward(l);
            (t.value(y).clone(), t.grad(a).unwrap().clone())
        };
        let (vf, gf) = run(true);
        let (vu, gu) = run(false);
        for (x, y) in vf.as_slice().iter().zip(vu.as_slice()) {
            assert!((x - y).abs() < 1e-6, "fused value diverged: {x} vs {y}");
        }
        for (x, y) in gf.as_slice().iter().zip(gu.as_slice()) {
            assert!((x - y).abs() < 1e-6, "fused grad diverged: {x} vs {y}");
        }
    }

    #[test]
    fn gradcheck_transpose_matmul() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(41);
        let lin = Linear::new(&mut ps, &mut rng, "k", 3, 3);
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let q = constant(t, 2, 3, &[0.2, -0.1, 0.4, 0.6, 0.3, -0.5]);
            let keys = constant(t, 4, 3, &[0.1; 12]);
            let kproj = lin.forward(t, ps, keys);
            let kt = t.transpose(kproj);
            let scores = t.matmul(q, kt);
            let attn = t.softmax_rows(scores);
            t.mean_all(attn)
        });
        assert!(err < TOL, "max grad err {err}");
    }
}
