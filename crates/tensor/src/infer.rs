//! Gradient-free mirrors of the [`crate::tape::Tape`] forward ops.
//!
//! Each function here computes the *exact* expression its tape counterpart
//! records — same per-element formula, same iteration structure, same GEMM
//! kernel — so a forward pass assembled from these helpers is bit-identical
//! to the tape forward pass over the same inputs, while allocating no graph.
//!
//! Two properties follow from the op set and are what online serving relies
//! on (see the batching determinism contract in DESIGN.md):
//!
//! * **bit-identity with training forward** — scores computed at serving
//!   time equal `Tape`-computed scores to the bit;
//! * **row independence** — every op maps input row `r` to output row `r`
//!   without reading other rows (matmuls by the GEMM contract: parallelism
//!   splits output rows and each element is one k-ascending chain), so a
//!   patient's output is unchanged by which other patients share the batch.

use crate::matrix::Matrix;

/// Element-wise logistic sigmoid — mirrors [`crate::tape::Tape::sigmoid`].
pub fn sigmoid(a: &Matrix) -> Matrix {
    a.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Element-wise hyperbolic tangent — mirrors [`crate::tape::Tape::tanh`].
pub fn tanh(a: &Matrix) -> Matrix {
    a.map(|x| x.tanh())
}

/// `(r x c) + (1 x c)` bias addition — mirrors
/// [`crate::tape::Tape::add_row_broadcast`].
pub fn add_row_broadcast(a: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(a.cols(), bias.cols(), "bias width mismatch");
    let bias_row = bias.row(0);
    let mut buf = Vec::with_capacity(a.rows() * a.cols());
    for r in 0..a.rows() {
        buf.extend(a.row(r).iter().zip(bias_row).map(|(&x, &b)| x + b));
    }
    Matrix::from_vec(a.rows(), a.cols(), buf)
}

/// `(r x c) * (r x 1)` per-row scaling — mirrors
/// [`crate::tape::Tape::mul_col_broadcast`].
pub fn mul_col_broadcast(a: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(w.cols(), 1, "weight must be a column vector");
    assert_eq!(a.rows(), w.rows(), "weight height mismatch");
    let mut buf = Vec::with_capacity(a.rows() * a.cols());
    for r in 0..a.rows() {
        let s = w[(r, 0)];
        buf.extend(a.row(r).iter().map(|&x| x * s));
    }
    Matrix::from_vec(a.rows(), a.cols(), buf)
}

/// Fused sigmoid gate `σ(a + b + bias)` — mirrors
/// [`crate::tape::Tape::gate_sigmoid`].
pub fn gate_sigmoid(a: &Matrix, b: &Matrix, bias: &Matrix) -> Matrix {
    gate(a, b, bias, |p| 1.0 / (1.0 + (-p).exp()))
}

/// Fused tanh gate `tanh(a + b + bias)` — mirrors
/// [`crate::tape::Tape::gate_tanh`].
pub fn gate_tanh(a: &Matrix, b: &Matrix, bias: &Matrix) -> Matrix {
    gate(a, b, bias, |p| p.tanh())
}

fn gate(a: &Matrix, b: &Matrix, bias: &Matrix, act: impl Fn(f32) -> f32) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "gate operand shape mismatch");
    assert_eq!(bias.rows(), 1, "gate bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "gate bias width mismatch");
    let bias_row = bias.row(0);
    // The pre-activation `(x + y) + c` is SIMD-dispatched (lane-per-element,
    // scalar add order — bit-identical across backends); the transcendental
    // stays scalar libm so its bits match the tape kernel exactly.
    let mut buf = vec![0.0f32; a.rows() * a.cols()];
    let cols = a.cols();
    for r in 0..a.rows() {
        crate::simd::add3(
            &mut buf[r * cols..(r + 1) * cols],
            a.row(r),
            b.row(r),
            bias_row,
        );
    }
    for p in buf.iter_mut() {
        *p = act(*p);
    }
    Matrix::from_vec(a.rows(), a.cols(), buf)
}

/// Fused GRU state blend `(1 - z) ⊙ h + z ⊙ cand` — mirrors
/// [`crate::tape::Tape::gru_blend`].
pub fn gru_blend(z: &Matrix, h: &Matrix, cand: &Matrix) -> Matrix {
    assert_eq!(z.shape(), h.shape(), "blend shape mismatch");
    assert_eq!(z.shape(), cand.shape(), "blend shape mismatch");
    let mut buf = vec![0.0f32; z.rows() * z.cols()];
    crate::simd::gru_blend_slices(&mut buf, z.as_slice(), h.as_slice(), cand.as_slice());
    Matrix::from_vec(z.rows(), z.cols(), buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use crate::tape::Tape;

    fn m(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Deterministic awkward fill: mixes signs, magnitudes and zeros.
        Matrix::from_fn(rows, cols, |r, c| {
            let v = ((r * 31 + c * 17 + seed as usize) % 13) as f32 - 6.0;
            v * 0.37
        })
    }

    /// Every mirror op matches its tape counterpart to the bit.
    #[test]
    fn mirrors_match_tape_bitwise() {
        let a = m(4, 5, 1);
        let b = m(4, 5, 2);
        let bias = m(1, 5, 3);
        let w = m(4, 1, 4);

        let mut t = Tape::new();
        let ps = ParamStore::new();
        let _ = &ps;
        let av = t.constant(a.clone());
        let bv = t.constant(b.clone());
        let biasv = t.constant(bias.clone());
        let wv = t.constant(w.clone());

        let pairs: Vec<(Matrix, Matrix)> = vec![
            (sigmoid(&a), {
                let v = t.sigmoid(av);
                t.value(v).clone()
            }),
            (tanh(&a), {
                let v = t.tanh(av);
                t.value(v).clone()
            }),
            (add_row_broadcast(&a, &bias), {
                let v = t.add_row_broadcast(av, biasv);
                t.value(v).clone()
            }),
            (mul_col_broadcast(&a, &w), {
                let v = t.mul_col_broadcast(av, wv);
                t.value(v).clone()
            }),
            (gate_sigmoid(&a, &b, &bias), {
                let v = t.gate_sigmoid(av, bv, biasv);
                t.value(v).clone()
            }),
            (gate_tanh(&a, &b, &bias), {
                let v = t.gate_tanh(av, bv, biasv);
                t.value(v).clone()
            }),
            (gru_blend(&sigmoid(&a), &b, &tanh(&a)), {
                let z = t.sigmoid(av);
                let cand = t.tanh(av);
                let v = t.gru_blend(z, bv, cand);
                t.value(v).clone()
            }),
        ];
        for (i, (got, want)) in pairs.iter().enumerate() {
            assert_eq!(got.shape(), want.shape(), "op {i} shape");
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits(), "op {i} drifted");
            }
        }
    }

    /// The fused gate/blend mirrors are bit-identical under every SIMD
    /// backend the host supports (including ragged row widths).
    #[test]
    fn gate_kernels_bit_identical_across_backends() {
        let a = m(5, 19, 7);
        let b = m(5, 19, 8);
        let bias = m(1, 19, 9);
        let z = sigmoid(&a);
        let cand = tanh(&b);

        let before = crate::simd::active();
        assert!(crate::simd::set_backend(crate::simd::Backend::Scalar));
        let want = [
            gate_sigmoid(&a, &b, &bias),
            gate_tanh(&a, &b, &bias),
            gru_blend(&z, &a, &cand),
        ];
        for backend in crate::simd::supported_backends() {
            assert!(crate::simd::set_backend(backend));
            let got = [
                gate_sigmoid(&a, &b, &bias),
                gate_tanh(&a, &b, &bias),
                gru_blend(&z, &a, &cand),
            ];
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                for (gv, wv) in g.as_slice().iter().zip(w.as_slice()) {
                    assert_eq!(gv.to_bits(), wv.to_bits(), "op {i} drifted on {backend:?}");
                }
            }
        }
        crate::simd::set_backend(before);
    }

    /// `Matrix::matmul` (fresh, non-accumulating) equals the tape's
    /// accumulate-into-zeros matmul bit-for-bit: both are one k-ascending
    /// chain per element seeded at 0.
    #[test]
    fn matmul_matches_tape_bitwise() {
        let a = m(6, 7, 5);
        let b = m(7, 4, 6);
        let mut t = Tape::new();
        let av = t.constant(a.clone());
        let bv = t.constant(b.clone());
        let want = t.matmul(av, bv);
        let got = a.matmul(&b);
        for (g, w) in got.as_slice().iter().zip(t.value(want).as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
