//! Weight initialisation schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Uniform initialisation in `(-scale, scale)`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

/// Orthogonal-ish recurrent initialisation: Xavier scaled down — adequate for
/// the small hidden sizes used in this workspace.
pub fn recurrent(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    xavier_uniform(rng, rows, cols).scale(0.8)
}

/// Zero initialisation (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 10, 20);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not all zero.
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 5, 5, 0.01);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.01));
    }
}
