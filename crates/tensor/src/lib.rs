//! # cohortnet-tensor
//!
//! A small, dependency-free (beyond `rand`) tensor and automatic
//! differentiation engine purpose-built for the CohortNet reproduction.
//!
//! The paper's models — per-feature GRU channels, bilinear feature-interaction
//! attention, cohort attention — are all small recurrent/attention networks
//! over `f32` matrices, so this crate provides exactly that:
//!
//! * [`matrix::Matrix`] — dense row-major `f32` matrices;
//! * [`tape::Tape`] — single-pass reverse-mode autodiff with a compact op set;
//! * [`param::ParamStore`] — shared trainable parameter arena;
//! * [`nn`] — `Linear`, `Mlp`, `GruCell`, `LstmCell` layers;
//! * [`optim`] — SGD and Adam;
//! * [`gradcheck`] — finite-difference validation used throughout the tests.
//!
//! ## Example
//!
//! ```
//! use cohortnet_tensor::matrix::Matrix;
//! use cohortnet_tensor::param::ParamStore;
//! use cohortnet_tensor::tape::Tape;
//! use cohortnet_tensor::optim::Adam;
//!
//! // Fit y = 2x with one weight.
//! let mut ps = ParamStore::new();
//! let w = ps.register("w", Matrix::zeros(1, 1));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut t = Tape::new();
//!     let wv = t.param(&ps, w);
//!     let x = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
//!     let y = t.mul(wv, x);
//!     let loss = t.mse(y, Matrix::from_vec(1, 1, vec![6.0]));
//!     t.backward(loss);
//!     t.flush_grads(&mut ps);
//!     opt.step(&mut ps);
//! }
//! assert!((ps.value(w)[(0, 0)] - 2.0).abs() < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod gemm;
pub mod gradcheck;
pub mod infer;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod param;
pub mod quant;
pub mod simd;
pub mod tape;

pub use matrix::Matrix;
pub use param::{GradBuffer, ParamId, ParamStore};
pub use tape::{Tape, Var};
