//! Dense row-major `f32` matrix.
//!
//! This is the value type that everything else in the workspace is built on:
//! the autograd [`Tape`](crate::tape::Tape) stores one `Matrix` per node, the
//! clustering crate consumes flat slices produced here, and the EHR crate
//! emits batches as matrices.
//!
//! Elementwise ops favour clarity and cache-friendly inner loops; all matrix
//! products (`matmul`, `matmul_acc`, and the transpose-fused `matmul_tn` /
//! `matmul_nt` family) share the blocked kernel in [`crate::gemm`].

use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an n x 1 column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// All matrix products route through the blocked kernel in
    /// [`crate::gemm`]; see its module docs for the determinism contract.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm_into(false, false, self, rhs, &mut out, false);
        out
    }

    /// Like [`Matrix::matmul`] but accumulates into `out` (`out += self * rhs`).
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::gemm::gemm_into(false, false, self, rhs, out, true);
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        crate::gemm::gemm_into(true, false, self, rhs, &mut out, false);
        out
    }

    /// `out += selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::gemm::gemm_into(true, false, self, rhs, out, true);
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        crate::gemm::gemm_into(false, true, self, rhs, &mut out, false);
        out
    }

    /// `out += self * rhsᵀ` without materialising the transpose.
    pub fn matmul_nt_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::gemm::gemm_into(false, true, self, rhs, out, true);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + rhs` element-wise.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// `self - rhs` element-wise.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// `self * rhs` element-wise (Hadamard product).
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// `self * s` for a scalar `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += rhs` element-wise, in place.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self += rhs * s` element-wise, in place.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Row-wise sums as an `rows x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out[(r, 0)] = self.row(r).iter().sum();
        }
        out
    }

    /// Column-wise sums as a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(0, c)] += self[(r, c)];
            }
        }
        out
    }

    /// Column-wise means as a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = self.sum_rows();
        if self.rows > 0 {
            out.map_inplace(|x| x / self.rows as f32);
        }
        out
    }

    /// Horizontal concatenation of matrices that share a row count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = parts[0].rows;
        let total: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, total);
        for r in 0..rows {
            let mut offset = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "concat_cols row mismatch");
                out.data[r * total + offset..r * total + offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Vertical concatenation of matrices that share a column count.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = parts[0].cols;
        let total: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(total * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "concat_rows col mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix::from_vec(total, cols, data)
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Row-wise softmax; each row sums to 1.
    ///
    /// Numerically stable (subtracts the per-row maximum before exponentiating).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        out
    }

    /// Index of the largest element in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        best
    }

    /// Squared Euclidean distance between row `r` of `self` and `other`.
    pub fn row_distance_sq(&self, r: usize, other: &[f32]) -> f32 {
        self.row(r)
            .iter()
            .zip(other.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// True when all elements are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::full(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 1, vec![3., 4.]);
        let mut out = Matrix::full(1, 1, 10.0);
        a.matmul_acc(&b, &mut out);
        assert_eq!(out[(0, 0)], 21.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(3, 1)], a[(1, 3)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_cols().as_slice(), &[3., 7.]);
        assert_eq!(a.sum_rows().as_slice(), &[4., 6.]);
        assert_eq!(a.mean_rows().as_slice(), &[2., 3.]);
    }

    #[test]
    fn concat_and_slice_cols() {
        let a = Matrix::from_vec(2, 1, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 3., 4.]);
        assert_eq!(c.row(1), &[2., 5., 6.]);
        assert_eq!(c.slice_cols(1, 3), b);
        assert_eq!(c.slice_cols(0, 1), a);
    }

    #[test]
    fn concat_and_slice_rows() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.slice_rows(0, 1), a);
        assert_eq!(c.slice_rows(1, 3), b);
    }

    #[test]
    fn softmax_rows_is_simplex() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&x| x > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_distance() {
        let a = Matrix::from_vec(2, 3, vec![1., 5., 2., 9., 0., 3.]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 0);
        assert_eq!(a.row_distance_sq(0, &[1., 5., 2.]), 0.0);
        assert_eq!(a.row_distance_sq(0, &[0., 5., 2.]), 1.0);
    }

    #[test]
    fn finite_check() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }
}
