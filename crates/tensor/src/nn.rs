//! Reusable neural layers built on the autograd [`Tape`].
//!
//! Every layer owns [`ParamId`] handles into a shared [`ParamStore`] and
//! exposes a `forward`/`step` method that records onto a caller-provided
//! tape. Layers are therefore cheap to clone-free share across time steps —
//! weight tying across a sequence falls out naturally.

use crate::init;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::rngs::StdRng;

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a new linear layer's parameters.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = ps.register(
            format!("{name}.w"),
            init::xavier_uniform(rng, in_dim, out_dim),
        );
        let b = ps.register(format!("{name}.b"), init::zeros(1, out_dim));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// Registers a linear layer with no bias term (`y = x W`), for heads
    /// whose intercept must live elsewhere — e.g. CohortNet's Eq. 14
    /// calibration term `w^c · ĥ`, where the only bias is `b^p` on the
    /// individual path.
    pub fn new_no_bias(
        ps: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = ps.register(
            format!("{name}.w"),
            init::xavier_uniform(rng, in_dim, out_dim),
        );
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `(batch x in_dim)` node.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        let w = t.param(ps, self.w);
        let xw = t.matmul(x, w);
        match self.b {
            Some(b) => {
                let b = t.param(ps, b);
                t.add_row_broadcast(xw, b)
            }
            None => xw,
        }
    }

    /// The weight parameter handle (for introspection, e.g. calibration
    /// decomposition in CohortNet's CEM).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// The bias parameter handle, `None` for bias-free layers.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }
}

/// Activation functions selectable in an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    fn apply(self, t: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => t.relu(x),
            Activation::Tanh => t.tanh(x),
            Activation::Sigmoid => t.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Multi-layer perceptron with a uniform hidden activation and a selectable
/// output activation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    output_act: Activation,
}

impl Mlp {
    /// Builds an MLP through the widths in `dims` (e.g. `[24, 16, 8]` gives
    /// two layers).
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        output_act: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, rng, &format!("{name}.l{i}"), w[0], w[1]))
            .collect();
        Mlp {
            layers,
            hidden_act,
            output_act,
        }
    }

    /// Applies the MLP to a `(batch x dims[0])` node.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(t, ps, x);
            x = if i == last {
                self.output_act.apply(t, x)
            } else {
                self.hidden_act.apply(t, x)
            };
        }
        x
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim
    }
}

/// Gated recurrent unit cell (Cho et al., 2014).
///
/// `z = σ(x Wz + h Uz + bz)`, `r = σ(x Wr + h Ur + br)`,
/// `h̃ = tanh(x Wh + (r⊙h) Uh + bh)`, `h' = (1-z)⊙h + z⊙h̃`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
}

/// The nine parameter handles of a [`GruCell`], in gate order. Exposed for
/// gradient-free inference mirrors that read weights straight from the
/// [`ParamStore`] without recording a tape (see `cohortnet::infer`).
#[derive(Debug, Clone, Copy)]
pub struct GruParams {
    /// Update-gate input weights `Wz`.
    pub wz: ParamId,
    /// Update-gate recurrent weights `Uz`.
    pub uz: ParamId,
    /// Update-gate bias `bz`.
    pub bz: ParamId,
    /// Reset-gate input weights `Wr`.
    pub wr: ParamId,
    /// Reset-gate recurrent weights `Ur`.
    pub ur: ParamId,
    /// Reset-gate bias `br`.
    pub br: ParamId,
    /// Candidate input weights `Wh`.
    pub wh: ParamId,
    /// Candidate recurrent weights `Uh`.
    pub uh: ParamId,
    /// Candidate bias `bh`.
    pub bh: ParamId,
}

impl GruCell {
    /// The cell's parameter handles (see [`GruParams`]).
    pub fn params(&self) -> GruParams {
        GruParams {
            wz: self.wz,
            uz: self.uz,
            bz: self.bz,
            wr: self.wr,
            ur: self.ur,
            br: self.br,
            wh: self.wh,
            uh: self.uh,
            bh: self.bh,
        }
    }

    /// Registers a new GRU cell's parameters.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        GruCell {
            wz: ps.register(
                format!("{name}.wz"),
                init::xavier_uniform(rng, in_dim, hidden_dim),
            ),
            uz: ps.register(
                format!("{name}.uz"),
                init::recurrent(rng, hidden_dim, hidden_dim),
            ),
            bz: ps.register(format!("{name}.bz"), init::zeros(1, hidden_dim)),
            wr: ps.register(
                format!("{name}.wr"),
                init::xavier_uniform(rng, in_dim, hidden_dim),
            ),
            ur: ps.register(
                format!("{name}.ur"),
                init::recurrent(rng, hidden_dim, hidden_dim),
            ),
            br: ps.register(format!("{name}.br"), init::zeros(1, hidden_dim)),
            wh: ps.register(
                format!("{name}.wh"),
                init::xavier_uniform(rng, in_dim, hidden_dim),
            ),
            uh: ps.register(
                format!("{name}.uh"),
                init::recurrent(rng, hidden_dim, hidden_dim),
            ),
            bh: ps.register(format!("{name}.bh"), init::zeros(1, hidden_dim)),
            in_dim,
            hidden_dim,
        }
    }

    /// Creates the initial zero hidden state for a batch.
    pub fn init_state(&self, t: &mut Tape, batch: usize) -> Var {
        t.constant(crate::matrix::Matrix::zeros(batch, self.hidden_dim))
    }

    /// One recurrent step: `(x: batch x in_dim, h: batch x hidden) -> h'`.
    ///
    /// Each gate is one fused node (`σ/tanh(xW + hU + b)`) and the state
    /// update is the fused blend `(1-z)⊙h + z⊙h̃`.
    pub fn step(&self, t: &mut Tape, ps: &ParamStore, x: Var, h: Var) -> Var {
        let pre = |t: &mut Tape, w: ParamId, u: ParamId, hh: Var| {
            let wv = t.param(ps, w);
            let uv = t.param(ps, u);
            let xw = t.matmul(x, wv);
            let hu = t.matmul(hh, uv);
            (xw, hu)
        };
        let (zxw, zhu) = pre(t, self.wz, self.uz, h);
        let bz = t.param(ps, self.bz);
        let z = t.gate_sigmoid(zxw, zhu, bz);
        let (rxw, rhu) = pre(t, self.wr, self.ur, h);
        let br = t.param(ps, self.br);
        let r = t.gate_sigmoid(rxw, rhu, br);
        let rh = t.mul(r, h);
        // Note: the candidate path must not add `h Uh` twice — the recurrent
        // matmul below already uses `rh` as its input.
        let (cxw, chu) = pre(t, self.wh, self.uh, rh);
        let bh = t.param(ps, self.bh);
        let cand = t.gate_tanh(cxw, chu, bh);
        t.gru_blend(z, h, cand)
    }

    /// Unrolls the cell over a sequence of inputs, returning all hidden
    /// states (one per step).
    pub fn unroll(&self, t: &mut Tape, ps: &ParamStore, xs: &[Var], batch: usize) -> Vec<Var> {
        let mut h = self.init_state(t, batch);
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step(t, ps, x, h);
            out.push(h);
        }
        out
    }
}

/// Long short-term memory cell (Hochreiter & Schmidhuber, 1997).
#[derive(Debug, Clone)]
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wc: ParamId,
    uc: ParamId,
    bc: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
}

/// The `(hidden, cell)` state pair of an LSTM.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state node.
    pub h: Var,
    /// Cell memory node.
    pub c: Var,
}

impl LstmCell {
    /// Registers a new LSTM cell's parameters.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        let reg_w = |ps: &mut ParamStore, rng: &mut StdRng, s: &str| {
            ps.register(
                format!("{name}.{s}"),
                init::xavier_uniform(rng, in_dim, hidden_dim),
            )
        };
        let wi = reg_w(ps, rng, "wi");
        let wf = reg_w(ps, rng, "wf");
        let wo = reg_w(ps, rng, "wo");
        let wc = reg_w(ps, rng, "wc");
        let reg_u = |ps: &mut ParamStore, rng: &mut StdRng, s: &str| {
            ps.register(
                format!("{name}.{s}"),
                init::recurrent(rng, hidden_dim, hidden_dim),
            )
        };
        let ui = reg_u(ps, rng, "ui");
        let uf = reg_u(ps, rng, "uf");
        let uo = reg_u(ps, rng, "uo");
        let uc = reg_u(ps, rng, "uc");
        // Forget-gate bias starts at 1 so early training retains memory.
        let bf = ps.register(
            format!("{name}.bf"),
            crate::matrix::Matrix::full(1, hidden_dim, 1.0),
        );
        let bi = ps.register(format!("{name}.bi"), init::zeros(1, hidden_dim));
        let bo = ps.register(format!("{name}.bo"), init::zeros(1, hidden_dim));
        let bc = ps.register(format!("{name}.bc"), init::zeros(1, hidden_dim));
        LstmCell {
            wi,
            ui,
            bi,
            wf,
            uf,
            bf,
            wo,
            uo,
            bo,
            wc,
            uc,
            bc,
            in_dim,
            hidden_dim,
        }
    }

    /// Creates the initial zero state for a batch.
    pub fn init_state(&self, t: &mut Tape, batch: usize) -> LstmState {
        LstmState {
            h: t.constant(crate::matrix::Matrix::zeros(batch, self.hidden_dim)),
            c: t.constant(crate::matrix::Matrix::zeros(batch, self.hidden_dim)),
        }
    }

    /// One recurrent step. Every gate is one fused
    /// `σ/tanh(xW + hU + b)` node.
    pub fn step(&self, t: &mut Tape, ps: &ParamStore, x: Var, state: LstmState) -> LstmState {
        let pre = |t: &mut Tape, w: ParamId, u: ParamId| {
            let wv = t.param(ps, w);
            let uv = t.param(ps, u);
            let xw = t.matmul(x, wv);
            let hu = t.matmul(state.h, uv);
            (xw, hu)
        };
        let (ixw, ihu) = pre(t, self.wi, self.ui);
        let bi = t.param(ps, self.bi);
        let i = t.gate_sigmoid(ixw, ihu, bi);
        let (fxw, fhu) = pre(t, self.wf, self.uf);
        let bf = t.param(ps, self.bf);
        let f = t.gate_sigmoid(fxw, fhu, bf);
        let (oxw, ohu) = pre(t, self.wo, self.uo);
        let bo = t.param(ps, self.bo);
        let o = t.gate_sigmoid(oxw, ohu, bo);
        let (gxw, ghu) = pre(t, self.wc, self.uc);
        let bc = t.param(ps, self.bc);
        let g = t.gate_tanh(gxw, ghu, bc);
        let fc = t.mul(f, state.c);
        let ig = t.mul(i, g);
        let c = t.add(fc, ig);
        let tc = t.tanh(c);
        let h = t.mul(o, tc);
        LstmState { h, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::Adam;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shapes() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut ps, &mut rng, "lin", 3, 5);
        let mut t = Tape::new();
        let x = t.constant(Matrix::zeros(4, 3));
        let y = lin.forward(&mut t, &ps, x);
        assert_eq!(t.value(y).shape(), (4, 5));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &mut ps,
            &mut rng,
            "xor",
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Identity,
        );
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut t = Tape::new();
            let xv = t.constant(x.clone());
            let logits = mlp.forward(&mut t, &ps, xv);
            let loss = t.bce_with_logits(logits, y.clone());
            last = t.value(loss)[(0, 0)];
            t.backward(loss);
            t.flush_grads(&mut ps);
            opt.step(&mut ps);
        }
        assert!(last < 0.1, "xor loss did not converge: {last}");
    }

    #[test]
    fn gru_step_shapes_and_bounds() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(&mut ps, &mut rng, "gru", 4, 6);
        let mut t = Tape::new();
        let h0 = cell.init_state(&mut t, 3);
        let x = t.constant(Matrix::full(3, 4, 0.5));
        let h1 = cell.step(&mut t, &ps, x, h0);
        assert_eq!(t.value(h1).shape(), (3, 6));
        // GRU hidden state is a convex-combination of h (0) and tanh, so in (-1, 1).
        assert!(t.value(h1).as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gru_remembers_input_sign() {
        // Train a GRU to output the sign of the FIRST input over a short
        // sequence — requires the recurrent path to carry information.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(&mut ps, &mut rng, "gru", 1, 8);
        let head = Linear::new(&mut ps, &mut rng, "head", 8, 1);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 0.0, 0.0, 0.0], 1.0),
            (vec![-1.0, 0.0, 0.0, 0.0], 0.0),
            (vec![1.0, 0.1, -0.1, 0.0], 1.0),
            (vec![-1.0, 0.1, -0.1, 0.0], 0.0),
        ];
        let mut last = f32::INFINITY;
        for _ in 0..250 {
            let mut t = Tape::new();
            let xs: Vec<Var> = (0..4)
                .map(|step| {
                    let col: Vec<f32> = seqs.iter().map(|(s, _)| s[step]).collect();
                    t.constant(Matrix::col_vector(&col))
                })
                .collect();
            let hs = cell.unroll(&mut t, &ps, &xs, seqs.len());
            let logits = head.forward(&mut t, &ps, *hs.last().unwrap());
            let y = Matrix::col_vector(&seqs.iter().map(|(_, l)| *l).collect::<Vec<_>>());
            let loss = t.bce_with_logits(logits, y);
            last = t.value(loss)[(0, 0)];
            t.backward(loss);
            t.flush_grads(&mut ps);
            opt.step(&mut ps);
        }
        assert!(last < 0.2, "gru memory task did not converge: {last}");
    }

    #[test]
    fn lstm_step_shapes() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(&mut ps, &mut rng, "lstm", 4, 6);
        let mut t = Tape::new();
        let s0 = cell.init_state(&mut t, 2);
        let x = t.constant(Matrix::full(2, 4, 0.1));
        let s1 = cell.step(&mut t, &ps, x, s0);
        assert_eq!(t.value(s1.h).shape(), (2, 6));
        assert_eq!(t.value(s1.c).shape(), (2, 6));
    }

    #[test]
    fn lstm_trains_on_last_input() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let cell = LstmCell::new(&mut ps, &mut rng, "lstm", 1, 6);
        let head = Linear::new(&mut ps, &mut rng, "head", 6, 1);
        let mut opt = Adam::new(0.03);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let mut t = Tape::new();
            let mut st = cell.init_state(&mut t, 2);
            for step in 0..3 {
                let x = t.constant(Matrix::from_vec(
                    2,
                    1,
                    vec![0.0, if step == 2 { 1.0 } else { 0.0 }],
                ));
                st = cell.step(&mut t, &ps, x, st);
            }
            let logits = head.forward(&mut t, &ps, st.h);
            let loss = t.bce_with_logits(logits, Matrix::from_vec(2, 1, vec![0.0, 1.0]));
            last = t.value(loss)[(0, 0)];
            t.backward(loss);
            t.flush_grads(&mut ps);
            opt.step(&mut ps);
        }
        assert!(last < 0.2, "lstm task did not converge: {last}");
    }
}
