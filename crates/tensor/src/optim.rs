//! First-order optimisers over a [`ParamStore`].
//!
//! The paper trains every model with Adam at learning rate 1e-3 (§4.1
//! Implementation Details); SGD is kept for tests and ablations.

use crate::matrix::Matrix;
use crate::param::ParamStore;

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update from the accumulated gradients, then clears them.
    pub fn step(&mut self, store: &mut ParamStore) {
        for e in store.entries_mut() {
            let lr = self.lr;
            for (v, &g) in e.value.as_mut_slice().iter_mut().zip(e.grad.as_slice()) {
                *v -= lr * g;
            }
        }
        store.zero_grads();
    }
}

/// Adam optimiser (Kingma & Ba, 2014) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper default: 1e-3).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam update from accumulated gradients, then clears them.
    ///
    /// Moment buffers are allocated lazily on first call and keyed by the
    /// parameter order in the store, so the same optimiser must always be
    /// used with the same store.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.m.is_empty() {
            for e in store.entries() {
                self.m.push(Matrix::zeros(e.value.rows(), e.value.cols()));
                self.v.push(Matrix::zeros(e.value.rows(), e.value.cols()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, e) in store.entries_mut().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let vals = e.value.as_mut_slice();
            let grads = e.grad.as_slice();
            let (ms, vs) = (m.as_mut_slice(), v.as_mut_slice());
            for j in 0..vals.len() {
                let g = grads[j];
                ms[j] = self.beta1 * ms[j] + (1.0 - self.beta1) * g;
                vs[j] = self.beta2 * vs[j] + (1.0 - self.beta2) * g * g;
                let m_hat = ms[j] / bc1;
                let v_hat = vs[j] / bc2;
                vals[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises (w - 3)^2 and checks convergence.
    fn quadratic_descent(mut step: impl FnMut(&mut ParamStore)) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..400 {
            let mut t = Tape::new();
            let wv = t.param(&ps, w);
            let loss = t.mse(wv, Matrix::from_vec(1, 1, vec![3.0]));
            t.backward(loss);
            t.flush_grads(&mut ps);
            step(&mut ps);
        }
        ps.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descent(|ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = quadratic_descent(|ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        ps.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![2.0]));
        let mut opt = Adam::new(0.001);
        opt.step(&mut ps);
        assert_eq!(ps.grad(w)[(0, 0)], 0.0);
    }

    #[test]
    fn adam_moves_against_gradient_sign() {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        ps.accumulate_grad(w, &Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut ps);
        assert!(ps.value(w)[(0, 0)] < 1.0);
    }
}
