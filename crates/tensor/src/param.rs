//! Trainable parameter storage shared across forward passes.
//!
//! Parameters live outside the per-batch [`Tape`](crate::tape::Tape): a tape
//! copies a parameter's current value into a leaf node at forward time and
//! [`Tape::flush_grads`](crate::tape::Tape::flush_grads) accumulates the leaf
//! gradient back into the [`ParamStore`] after `backward`. Optimisers in
//! [`crate::optim`] then update the store in place.

use crate::matrix::Matrix;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// One named trainable parameter: its value and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct ParamEntry {
    /// Human-readable name, used in diagnostics.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated since the last optimiser step.
    pub grad: Matrix,
}

/// Arena of all trainable parameters of a model.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Immutable access to a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimisers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Immutable access to a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].grad
    }

    /// Adds `g` into the accumulated gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.entries[id.0].grad.add_assign(g);
    }

    /// Clears all accumulated gradients (keeps allocations).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Global L2 norm of all gradients — used for clipping and diagnostics.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.as_slice().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Rescales all gradients so their global norm does not exceed `max_norm`.
    ///
    /// Returns the pre-clipping norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.map_inplace(|x| x * s);
            }
        }
        norm
    }

    /// Iterates over all entries (value + grad), mutably. Used by optimisers.
    pub fn entries_mut(&mut self) -> impl Iterator<Item = &mut ParamEntry> {
        self.entries.iter_mut()
    }

    /// Iterates over all entries immutably.
    pub fn entries(&self) -> impl Iterator<Item = &ParamEntry> {
        self.entries.iter()
    }
}

/// A detached gradient accumulator shaped like a [`ParamStore`].
///
/// Data-parallel training gives each minibatch shard its own `GradBuffer`:
/// every shard flushes its tape into its private buffer, the buffers are
/// merged with a fixed-order tree reduction, and the result is flushed into
/// the shared store once — so the accumulated gradient is bit-identical for
/// any thread count.
#[derive(Debug, Clone)]
pub struct GradBuffer {
    grads: Vec<Matrix>,
}

impl GradBuffer {
    /// Creates a zeroed buffer matching the store's parameter shapes.
    pub fn for_store(store: &ParamStore) -> Self {
        GradBuffer {
            grads: store
                .entries
                .iter()
                .map(|e| Matrix::zeros(e.value.rows(), e.value.cols()))
                .collect(),
        }
    }

    /// Clears all gradients, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Adds `g` into the buffered gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id.0].add_assign(g);
    }

    /// Element-wise adds another buffer into this one (the tree-reduction
    /// merge step).
    pub fn merge_from(&mut self, other: &GradBuffer) {
        assert_eq!(self.grads.len(), other.grads.len(), "grad buffer mismatch");
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            a.add_assign(b);
        }
    }

    /// Accumulates the buffered gradients into the store.
    pub fn flush_into(&self, store: &mut ParamStore) {
        assert_eq!(self.grads.len(), store.entries.len(), "store mismatch");
        for (i, g) in self.grads.iter().enumerate() {
            store.entries[i].grad.add_assign(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Matrix::full(2, 3, 1.0));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 6);
        assert_eq!(ps.value(id).shape(), (2, 3));
        assert_eq!(ps.grad(id).sum(), 0.0);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        ps.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        ps.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(ps.grad(id).as_slice(), &[1.5, 2.5]);
        ps.zero_grads();
        assert_eq!(ps.grad(id).sum(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        ps.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = ps.grad(id);
        assert!((g[(0, 0)] / g[(0, 1)] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_when_small() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        ps.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.3, 0.4]));
        ps.clip_grad_norm(10.0);
        assert_eq!(ps.grad(id).as_slice(), &[0.3, 0.4]);
    }
}
