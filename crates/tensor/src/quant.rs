//! Int8 per-channel quantized inference kernels.
//!
//! The quantized path trades the f32 GEMM's bit-identity-with-training for
//! throughput: weights are packed to `i8` with one scale per output channel
//! (computed once at snapshot save), activations are quantized per row at
//! runtime, and the dot products accumulate in `i32` — dequantizing only at
//! the epilogue.
//!
//! # Determinism
//!
//! Integer addition is exact and associative, so the `i32` accumulator is
//! order-free: scalar, SSE2, and AVX2 integer kernels produce the *same*
//! `i32` for every dot product, and the epilogue is one fixed f32
//! expression. A fixed snapshot therefore scores bit-identically on every
//! backend and thread count — the quantized path has its own reproducibility
//! guarantee, just anchored to the snapshot rather than to the f32 training
//! forward.
//!
//! # Scheme (`int8-perchan-v1`)
//!
//! For a weight matrix `W (k x n)` used as `x · W`:
//!
//! * per **output channel** `j`: `scale_w[j] = absmax(W[:, j]) / 127`,
//!   `Q[j][i] = round(W[i][j] / scale_w[j])` clamped to ±127, stored
//!   channel-contiguous (column-major) so each dot streams two `i8` runs;
//! * per **activation row** `r` at runtime: `scale_x = absmax(x[r]) / 127`,
//!   same round/clamp (all-zero rows get scale 0 and a zero row);
//! * `out[r][j] = (Σ_i qx[i]·qw[j][i] as f32) · (scale_x · scale_w[j])`.
//!
//! `round` is `f32::round` (half away from zero) everywhere — save-time and
//! runtime quantization share this one definition.

use crate::matrix::Matrix;
use crate::simd::{self, Backend};

/// An `i8`-packed weight matrix with per-output-channel scales, laid out for
/// `x · W` products: channel `j`'s `k` weights are contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    k: usize,
    n: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

/// Quantizes one f32 slice to `i8` at `absmax/127` scale, returning the
/// scale. An all-zero (or empty) slice quantizes to zeros with scale 0.
pub fn quantize_slice(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::active() == Backend::Avx2 {
        // SAFETY: backend gated on AVX2 support.
        return unsafe { quantize_slice_avx2(src, dst) };
    }
    quantize_slice_impl(src, dst)
}

/// The one quantization definition: `round(v / scale)` with `f32::round`
/// (half away from zero), clamped to ±127. `#[inline(always)]` so the AVX2
/// wrapper compiles this body *with* AVX2 enabled — `round` then lowers to a
/// `vroundps`-based branchless sequence (bit-exact with libm `roundf`)
/// instead of one libm call per element, and the loop auto-vectorizes.
#[inline(always)]
fn quantize_slice_impl(src: &[f32], dst: &mut [i8]) -> f32 {
    let absmax = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if absmax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let scale = absmax / 127.0;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// See [`quantize_slice_impl`] — same arithmetic, compiled with AVX2.
///
/// # Safety
/// Requires AVX2 (caller-gated on the active backend).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_slice_avx2(src: &[f32], dst: &mut [i8]) -> f32 {
    quantize_slice_impl(src, dst)
}

impl QuantMatrix {
    /// Quantizes `w` (shape `k x n`, used as the right operand of `x · W`)
    /// with one scale per output channel (column).
    pub fn quantize(w: &Matrix) -> QuantMatrix {
        let (k, n) = w.shape();
        let mut data = vec![0i8; k * n];
        let mut scales = vec![0.0f32; n];
        let mut col = vec![0.0f32; k];
        for j in 0..n {
            for i in 0..k {
                col[i] = w[(i, j)];
            }
            scales[j] = quantize_slice(&col, &mut data[j * k..(j + 1) * k]);
        }
        QuantMatrix { k, n, data, scales }
    }

    /// Rebuilds a matrix from stored parts (snapshot load).
    ///
    /// # Panics
    /// Panics when the buffer lengths disagree with the shape.
    pub fn from_parts(k: usize, n: usize, data: Vec<i8>, scales: Vec<f32>) -> QuantMatrix {
        assert_eq!(data.len(), k * n, "quant data length mismatch");
        assert_eq!(scales.len(), n, "quant scales length mismatch");
        QuantMatrix { k, n, data, scales }
    }

    /// Inner (reduction) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel-contiguous `i8` weights (`n` runs of `k`).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-channel scales (`n` entries).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The f32 matrix this quantization represents (dequantized) — used by
    /// tests to measure quantization error, not by the serving path.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.k, self.n, |i, j| {
            f32::from(self.data[j * self.k + i]) * self.scales[j]
        })
    }
}

/// `out = x · W` through the int8 path: each row of `x` is quantized at
/// `absmax/127`, dotted against every channel in `i32`, and dequantized at
/// the epilogue. `out` must be `x.rows() x w.n()`.
pub fn qgemm(x: &Matrix, w: &QuantMatrix, out: &mut Matrix) {
    assert_eq!(x.cols(), w.k, "qgemm inner dimension mismatch");
    assert_eq!(out.shape(), (x.rows(), w.n), "qgemm output shape mismatch");
    let mut qrow = vec![0i8; w.k];
    for r in 0..x.rows() {
        let sx = quantize_slice(x.row(r), &mut qrow);
        let out_row = out.row_mut(r);
        if sx == 0.0 {
            out_row.fill(0.0);
            continue;
        }
        score_row(&qrow, w, sx, out_row);
    }
}

/// One quantized activation row against every channel. On AVX2 the whole
/// row goes through [`score_row_avx2`], which shares each 16-byte activation
/// load across eight weight streams — the single-channel kernel is
/// instruction-bound on its loads and sign-extends, not its multiplies.
/// Integer accumulation is exact, so the blocking cannot change a single
/// output bit.
fn score_row(qrow: &[i8], w: &QuantMatrix, sx: f32, out_row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::active() == Backend::Avx2 {
        // SAFETY: backend gated on AVX2 support; shapes checked by `qgemm`.
        unsafe { score_row_avx2(qrow, &w.data, w.k, &w.scales, sx, out_row) };
        return;
    }
    for (j, o) in out_row.iter_mut().enumerate() {
        let qw = &w.data[j * w.k..(j + 1) * w.k];
        let acc = qdot(qrow, qw);
        *o = acc as f32 * (sx * w.scales[j]);
    }
}

/// Signed `i8` dot product with an `i32` accumulator, dispatched on the
/// active SIMD backend. Exact (integer) — every backend returns the same
/// value for the same inputs.
pub fn qdot(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "qdot length mismatch");
    match simd::active() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend gated on AVX2 support.
            unsafe { qdot_avx2(a, b) }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            unsafe { qdot_sse2(a, b) }
        }
        _ => qdot_scalar(a, b),
    }
}

fn qdot_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

/// 16 bytes per step: sign-extend both operands to `i16`, `vpmaddwd` the
/// pairs into `i32` lanes, accumulate. `pmaddwd` on sign-extended `i8`
/// cannot overflow its `i16`-pair sum (≤ 2·127² < 2¹⁵), unlike the
/// `maddubs` shortcut, so the result is exact.
///
/// # Safety
/// Requires AVX2; `a` and `b` must be equal length (caller-checked).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qdot_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
        let wa = _mm256_cvtepi8_epi16(va);
        let wb = _mm256_cvtepi8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        i += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
    let mut sum: i32 = lanes.iter().sum();
    while i < n {
        sum += i32::from(*a.get_unchecked(i)) * i32::from(*b.get_unchecked(i));
        i += 1;
    }
    sum
}

/// One whole activation row against every channel, eight channels per pass:
/// each 16-byte activation load/extend feeds eight `pmaddwd` streams, so the
/// kernel spends its port-5 shuffle budget (the `cvtepi8_epi16`s) nine times
/// per 128 MACs instead of twelve per 32. One call per row also keeps the
/// non-inlinable `target_feature` boundary out of the hot loop. Exact —
/// every lane is the same sign-extended `i16` product sum as the scalar
/// loop, and `i32` addition is order-free.
///
/// # Safety
/// Requires AVX2. `data` must hold `out_row.len()` channel-contiguous runs
/// of `k` weights, `qrow` must have `k` entries, and `scales` must cover
/// every channel (all checked by `qgemm` before dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn score_row_avx2(
    qrow: &[i8],
    data: &[i8],
    k: usize,
    scales: &[f32],
    sx: f32,
    out_row: &mut [f32],
) {
    use std::arch::x86_64::*;
    let n = out_row.len();
    let hsum = |v: __m256i| -> i32 {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    };
    let mut j = 0;
    while j + 8 <= n {
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut acc4 = _mm256_setzero_si256();
        let mut acc5 = _mm256_setzero_si256();
        let mut acc6 = _mm256_setzero_si256();
        let mut acc7 = _mm256_setzero_si256();
        let base = data.as_ptr().add(j * k);
        let mut i = 0;
        while i + 16 <= k {
            let ext =
                |off: usize| _mm256_cvtepi8_epi16(_mm_loadu_si128(base.add(off * k + i).cast()));
            let wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(qrow.as_ptr().add(i).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(wa, ext(0)));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(wa, ext(1)));
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(wa, ext(2)));
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(wa, ext(3)));
            acc4 = _mm256_add_epi32(acc4, _mm256_madd_epi16(wa, ext(4)));
            acc5 = _mm256_add_epi32(acc5, _mm256_madd_epi16(wa, ext(5)));
            acc6 = _mm256_add_epi32(acc6, _mm256_madd_epi16(wa, ext(6)));
            acc7 = _mm256_add_epi32(acc7, _mm256_madd_epi16(wa, ext(7)));
            i += 16;
        }
        let sums = [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7].map(hsum);
        for (t, s) in sums.into_iter().enumerate() {
            let mut sum = s;
            for ii in i..k {
                sum += i32::from(*qrow.get_unchecked(ii))
                    * i32::from(*data.get_unchecked((j + t) * k + ii));
            }
            *out_row.get_unchecked_mut(j + t) = sum as f32 * (sx * scales.get_unchecked(j + t));
        }
        j += 8;
    }
    while j < n {
        let acc = qdot_avx2(qrow, &data[j * k..(j + 1) * k]);
        *out_row.get_unchecked_mut(j) = acc as f32 * (sx * scales.get_unchecked(j));
        j += 1;
    }
}

/// SSE2 variant: sign-extension via the `unpack` + arithmetic-shift trick
/// (`cvtepi8_epi16` needs SSE4.1), then `pmaddwd` as above.
///
/// # Safety
/// `a` and `b` must be equal length (caller-checked); SSE2 is baseline on
/// x86_64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn qdot_sse2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm_setzero_si128();
    let mut i = 0;
    while i + 16 <= n {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
        // Duplicate each byte into the high half of an i16 lane, then shift
        // right arithmetically: a branch-free sign extension.
        let a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
        let a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(va, va), 8);
        let b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
        let b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vb, vb), 8);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
        i += 16;
    }
    let mut lanes = [0i32; 4];
    _mm_storeu_si128(lanes.as_mut_ptr().cast(), acc);
    let mut sum: i32 = lanes.iter().sum();
    while i < n {
        sum += i32::from(*a.get_unchecked(i)) * i32::from(*b.get_unchecked(i));
        i += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward(n: usize, seed: i32) -> Vec<i8> {
        (0..n)
            .map(|i| (((i as i32 * 37 + seed * 101) % 255) - 127) as i8)
            .collect()
    }

    #[test]
    fn qdot_backends_agree_exactly() {
        let before = simd::active();
        for n in [0, 1, 15, 16, 17, 64, 129] {
            let a = awkward(n, 1);
            let b = awkward(n, 2);
            let want = qdot_scalar(&a, &b);
            for backend in simd::supported_backends() {
                assert!(simd::set_backend(backend));
                assert_eq!(qdot(&a, &b), want, "n={n} backend={backend:?}");
            }
        }
        simd::set_backend(before);
    }

    #[test]
    fn qdot_extremes_do_not_overflow_i16_paths() {
        // ±127 everywhere is the worst case for a maddubs-style kernel; our
        // sign-extended pmaddwd must get it exactly right.
        let a = vec![127i8; 64];
        let b = vec![-127i8; 64];
        let want = -127 * 127 * 64;
        let before = simd::active();
        for backend in simd::supported_backends() {
            assert!(simd::set_backend(backend));
            assert_eq!(qdot(&a, &b), want, "backend={backend:?}");
        }
        simd::set_backend(before);
    }

    #[test]
    fn quantize_round_trips_within_step() {
        let w = Matrix::from_fn(13, 7, |i, j| ((i * 7 + j * 3) as f32 - 40.0) * 0.13);
        let q = QuantMatrix::quantize(&w);
        let back = q.dequantize();
        for j in 0..7 {
            let scale = q.scales()[j];
            for i in 0..13 {
                let err = (w[(i, j)] - back[(i, j)]).abs();
                assert!(err <= scale * 0.5 + 1e-6, "err {err} > half-step {scale}");
            }
        }
    }

    #[test]
    fn zero_channel_and_zero_row_are_exact() {
        let w = Matrix::from_fn(5, 2, |i, _j| if i == 0 { 0.0 } else { 0.0 });
        let q = QuantMatrix::quantize(&w);
        assert_eq!(q.scales(), &[0.0, 0.0]);
        let x = Matrix::zeros(3, 5);
        let mut out = Matrix::zeros(3, 2);
        qgemm(&x, &q, &mut out);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn qgemm_tracks_f32_gemm_closely() {
        let x = Matrix::from_fn(4, 24, |r, c| ((r * 24 + c) as f32 * 0.31).sin());
        let w = Matrix::from_fn(24, 9, |r, c| ((r * 9 + c) as f32 * 0.17).cos() * 0.4);
        let q = QuantMatrix::quantize(&w);
        let exact = x.matmul(&w);
        let mut quant = Matrix::zeros(4, 9);
        qgemm(&x, &q, &mut quant);
        for (e, g) in exact.as_slice().iter().zip(quant.as_slice()) {
            // 1% absmax-relative: int8 per-channel keeps small products tight.
            assert!((e - g).abs() < 0.05, "quant drifted: {e} vs {g}");
        }
    }

    #[test]
    fn qgemm_bit_reproducible_across_backends() {
        let before = simd::active();
        // n=13 walks the AVX2 row kernel through its 8-wide block, then the
        // single-channel remainder; k=33 leaves a 1-byte scalar tail.
        for (k, n) in [(33usize, 13usize), (16, 8), (7, 3)] {
            let x = Matrix::from_fn(3, k, |r, c| ((r * k + c) as f32 * 0.7).sin());
            let w = Matrix::from_fn(k, n, |r, c| ((r + c) as f32 * 0.2).cos());
            let q = QuantMatrix::quantize(&w);
            assert!(simd::set_backend(Backend::Scalar));
            let mut want = Matrix::zeros(3, n);
            qgemm(&x, &q, &mut want);
            for backend in simd::supported_backends() {
                assert!(simd::set_backend(backend));
                let mut got = Matrix::zeros(3, n);
                qgemm(&x, &q, &mut got);
                for (g, w2) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(g.to_bits(), w2.to_bits(), "k={k} n={n} backend={backend:?}");
                }
            }
        }
        simd::set_backend(before);
    }
}
