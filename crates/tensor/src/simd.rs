//! Runtime-dispatched SIMD micro-kernels for the GEMM and fused gate paths.
//!
//! One backend is selected per process — AVX2 when the CPU has it, else SSE2
//! (baseline on x86_64), else scalar — detected once via
//! `is_x86_feature_detected!` and overridable with `COHORTNET_SIMD=avx2|
//! sse2|scalar` (or [`set_backend`] from code, which tests and benches use
//! to sweep backends in one process).
//!
//! # Why vectorization preserves the 0-ULP contract
//!
//! The GEMM determinism contract (see [`crate::gemm`]) is *per element*:
//! every output element is one k-ascending f32 chain of `acc = acc + a*b`
//! steps. The SIMD kernels vectorize **across the NR output columns** — each
//! SIMD lane owns exactly one output element and performs exactly the scalar
//! kernel's operation sequence for it: a correctly-rounded IEEE-754 multiply
//! followed by a correctly-rounded add, k ascending. Lanes never exchange
//! data mid-chain (no horizontal adds, no k-splitting), so every lane's bits
//! equal the scalar chain's bits.
//!
//! For the same reason the kernels deliberately do **not** use FMA
//! (`vfmadd*`): a fused multiply-add skips the intermediate rounding of the
//! product, producing results that differ from the scalar `mul` + `add`
//! chain by up to 1 ULP per step. FMA would be faster; it would also break
//! bit-identity with the training forward, the tape kernels, and every
//! recorded loss trajectory. The AVX2 kernel therefore issues `vmulps` +
//! `vaddps` pairs and wins its speedup from width and register blocking,
//! not contraction.
//!
//! Tile shapes per backend (`MR` rows is 4 everywhere so A-packing is
//! shared; only the packed-B panel width differs):
//!
//! | backend | panel width NR | accumulators            |
//! |---------|----------------|-------------------------|
//! | avx2    | 16             | 8 × `__m256` (8 chains) |
//! | sse2    | 8              | 8 × `__m128` (8 chains) |
//! | scalar  | 8              | `[[f32; 8]; 4]`         |
//!
//! The scalar kernel is the PR-2 register-tiled loop unchanged; the wider
//! AVX2 tile exists because a 4×8 tile has only 4 independent chains per
//! column group and stalls on add latency, while 8 chains keep both FP ports
//! busy every cycle.

use std::sync::atomic::{AtomicU8, Ordering};

/// Rows per micro-kernel tile — shared by every backend so `op(A)` packing
/// has a single layout.
pub const MR: usize = 4;
/// Widest packed-B panel any backend uses (the AVX2 tile).
pub const NR_MAX: usize = 16;

/// A SIMD instruction-set backend for the dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 kernels (no FMA contraction — see the module docs).
    Avx2,
    /// 128-bit SSE2 kernels (baseline on x86_64).
    Sse2,
    /// Pure-Rust scalar kernels (every platform).
    Scalar,
}

impl Backend {
    /// Stable lowercase name (`avx2`/`sse2`/`scalar`) — used by
    /// `COHORTNET_SIMD`, `/healthz`, `/metrics` and the bench output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Sse2 => "sse2",
            Backend::Scalar => "scalar",
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true, // SSE2 is part of the x86_64 baseline ABI.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Every backend the running CPU supports, fastest first.
pub fn supported_backends() -> Vec<Backend> {
    [Backend::Avx2, Backend::Sse2, Backend::Scalar]
        .into_iter()
        .filter(|b| b.supported())
        .collect()
}

/// The best backend the running CPU supports (ignoring the env override).
pub fn detect() -> Backend {
    if Backend::Avx2.supported() {
        Backend::Avx2
    } else if Backend::Sse2.supported() {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

const ACTIVE_UNSET: u8 = 0;

/// Process-wide active backend; 0 until first use, then 1 + discriminant.
static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Avx2 => 1,
        Backend::Sse2 => 2,
        Backend::Scalar => 3,
    }
}

fn decode(v: u8) -> Backend {
    match v {
        1 => Backend::Avx2,
        2 => Backend::Sse2,
        _ => Backend::Scalar,
    }
}

fn init_from_env() -> Backend {
    let detected = detect();
    let Ok(spec) = std::env::var("COHORTNET_SIMD") else {
        return detected;
    };
    let requested = match spec.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => return detected,
        "avx2" => Backend::Avx2,
        "sse2" => Backend::Sse2,
        "scalar" => Backend::Scalar,
        other => {
            eprintln!(
                "COHORTNET_SIMD={other:?} is not avx2|sse2|scalar|auto; using detected {}",
                detected.name()
            );
            return detected;
        }
    };
    if requested.supported() {
        requested
    } else {
        eprintln!(
            "COHORTNET_SIMD requested {} but the CPU does not support it; using {}",
            requested.name(),
            detected.name()
        );
        detected
    }
}

/// The active backend, resolving `COHORTNET_SIMD` / CPU detection on first
/// use. All dispatched kernels produce bit-identical results, so the choice
/// only trades wall-clock.
pub fn active() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        ACTIVE_UNSET => {
            let b = init_from_env();
            ACTIVE.store(encode(b), Ordering::Relaxed);
            b
        }
        v => decode(v),
    }
}

/// Forces the active backend (process-wide). Returns `false` — leaving the
/// current backend unchanged — when the CPU does not support `b`. Tests and
/// benches use this to sweep backends; because every backend is
/// bit-identical, flipping it concurrently with other work is benign.
pub fn set_backend(b: Backend) -> bool {
    if !b.supported() {
        return false;
    }
    ACTIVE.store(encode(b), Ordering::Relaxed);
    true
}

// ---------------------------------------------------------------------------
// GEMM micro-kernel dispatch
// ---------------------------------------------------------------------------

/// A micro-kernel: updates the `mr x nr` live region of `c` (row stride
/// `ldc`) with the full-K product of a K-major `MR`-wide packed A tile and a
/// K-major `nr_panel`-wide packed B panel, one k-ascending mul+add chain per
/// element.
pub type MicroKernel = fn(
    k_dim: usize,
    a_tile: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
);

/// The packed-B panel width and micro-kernel for one backend.
#[derive(Clone, Copy)]
pub struct GemmSpec {
    /// Packed panel width (columns per tile).
    pub nr: usize,
    /// The tile kernel.
    pub kernel: MicroKernel,
}

/// The GEMM kernel spec for the active backend.
pub fn gemm_spec() -> GemmSpec {
    gemm_spec_for(active())
}

/// The GEMM kernel spec for a specific backend (bench/test use).
pub fn gemm_spec_for(b: Backend) -> GemmSpec {
    match b {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => GemmSpec {
            nr: 16,
            kernel: microkernel_avx2,
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => GemmSpec {
            nr: 8,
            kernel: microkernel_sse2,
        },
        _ => GemmSpec {
            nr: 8,
            kernel: microkernel_scalar,
        },
    }
}

/// The PR-2 scalar register tile (MR=4, NR=8), kept as the reference
/// implementation and the portable fallback.
fn microkernel_scalar(
    k_dim: usize,
    a_tile: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    const NR: usize = 8;
    debug_assert!(nr <= NR && mr <= MR);
    let mut acc = [[0.0f32; NR]; MR];
    for i in 0..mr {
        let c_row = &c[i * ldc..i * ldc + nr];
        acc[i][..nr].copy_from_slice(c_row);
    }
    for k in 0..k_dim {
        let a_col = &a_tile[k * MR..k * MR + MR];
        let b_row = &b_panel[k * NR..k * NR + NR];
        for i in 0..MR {
            let a_ik = a_col[i];
            for j in 0..NR {
                acc[i][j] += a_ik * b_row[j];
            }
        }
    }
    for i in 0..mr {
        let c_row = &mut c[i * ldc..i * ldc + nr];
        c_row.copy_from_slice(&acc[i][..nr]);
    }
}

/// AVX2 4×16 tile: 8 × `__m256` accumulators (one chain per lane), one
/// `vmulps` + `vaddps` per step — no FMA, see the module docs. The live C
/// region is staged through a zero-padded 4×16 buffer so ragged edges run
/// the same dense loop; padded lanes compute garbage that is never stored
/// back.
#[cfg(target_arch = "x86_64")]
fn microkernel_avx2(
    k_dim: usize,
    a_tile: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    const NR: usize = 16;
    debug_assert!(nr <= NR && mr <= MR);
    let mut buf = [0.0f32; MR * NR];
    for i in 0..mr {
        buf[i * NR..i * NR + nr].copy_from_slice(&c[i * ldc..i * ldc + nr]);
    }
    // SAFETY: `gemm_spec_for` only hands this kernel out for `Backend::Avx2`,
    // which `Backend::supported` gates on `is_x86_feature_detected!("avx2")`.
    unsafe { avx2_tile(k_dim, a_tile, b_panel, &mut buf) };
    for i in 0..mr {
        c[i * ldc..i * ldc + nr].copy_from_slice(&buf[i * NR..i * NR + nr]);
    }
}

/// The dense AVX2 4×16 inner loop over a padded accumulator buffer.
///
/// # Safety
/// Requires AVX2. `a_tile` must hold at least `k_dim * MR` floats and
/// `b_panel` at least `k_dim * 16`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_tile(k_dim: usize, a_tile: &[f32], b_panel: &[f32], buf: &mut [f32; MR * 16]) {
    use std::arch::x86_64::*;
    debug_assert!(a_tile.len() >= k_dim * MR);
    debug_assert!(b_panel.len() >= k_dim * 16);
    let mut acc: [__m256; 8] = [
        _mm256_loadu_ps(buf.as_ptr()),
        _mm256_loadu_ps(buf.as_ptr().add(8)),
        _mm256_loadu_ps(buf.as_ptr().add(16)),
        _mm256_loadu_ps(buf.as_ptr().add(24)),
        _mm256_loadu_ps(buf.as_ptr().add(32)),
        _mm256_loadu_ps(buf.as_ptr().add(40)),
        _mm256_loadu_ps(buf.as_ptr().add(48)),
        _mm256_loadu_ps(buf.as_ptr().add(56)),
    ];
    let a_ptr = a_tile.as_ptr();
    let b_ptr = b_panel.as_ptr();
    for k in 0..k_dim {
        let b0 = _mm256_loadu_ps(b_ptr.add(k * 16));
        let b1 = _mm256_loadu_ps(b_ptr.add(k * 16 + 8));
        let a_col = a_ptr.add(k * MR);
        // Manually indexed so each accumulator stays in its own register;
        // mul then add keeps the per-lane chain identical to scalar.
        let a0 = _mm256_set1_ps(*a_col);
        acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(a0, b0));
        acc[1] = _mm256_add_ps(acc[1], _mm256_mul_ps(a0, b1));
        let a1 = _mm256_set1_ps(*a_col.add(1));
        acc[2] = _mm256_add_ps(acc[2], _mm256_mul_ps(a1, b0));
        acc[3] = _mm256_add_ps(acc[3], _mm256_mul_ps(a1, b1));
        let a2 = _mm256_set1_ps(*a_col.add(2));
        acc[4] = _mm256_add_ps(acc[4], _mm256_mul_ps(a2, b0));
        acc[5] = _mm256_add_ps(acc[5], _mm256_mul_ps(a2, b1));
        let a3 = _mm256_set1_ps(*a_col.add(3));
        acc[6] = _mm256_add_ps(acc[6], _mm256_mul_ps(a3, b0));
        acc[7] = _mm256_add_ps(acc[7], _mm256_mul_ps(a3, b1));
    }
    for (i, v) in acc.into_iter().enumerate() {
        _mm256_storeu_ps(buf.as_mut_ptr().add(i * 8), v);
    }
}

/// SSE2 4×8 tile: 8 × `__m128` accumulators, same chain discipline as the
/// scalar kernel, 4 lanes per op.
#[cfg(target_arch = "x86_64")]
fn microkernel_sse2(
    k_dim: usize,
    a_tile: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    const NR: usize = 8;
    debug_assert!(nr <= NR && mr <= MR);
    let mut buf = [0.0f32; MR * NR];
    for i in 0..mr {
        buf[i * NR..i * NR + nr].copy_from_slice(&c[i * ldc..i * ldc + nr]);
    }
    // SAFETY: SSE2 is unconditionally available on x86_64.
    unsafe { sse2_tile(k_dim, a_tile, b_panel, &mut buf) };
    for i in 0..mr {
        c[i * ldc..i * ldc + nr].copy_from_slice(&buf[i * NR..i * NR + nr]);
    }
}

/// The dense SSE2 4×8 inner loop over a padded accumulator buffer.
///
/// # Safety
/// `a_tile` must hold at least `k_dim * MR` floats and `b_panel` at least
/// `k_dim * 8`. (SSE2 itself is part of the x86_64 baseline.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sse2_tile(k_dim: usize, a_tile: &[f32], b_panel: &[f32], buf: &mut [f32; MR * 8]) {
    use std::arch::x86_64::*;
    debug_assert!(a_tile.len() >= k_dim * MR);
    debug_assert!(b_panel.len() >= k_dim * 8);
    let mut acc: [__m128; 8] = [
        _mm_loadu_ps(buf.as_ptr()),
        _mm_loadu_ps(buf.as_ptr().add(4)),
        _mm_loadu_ps(buf.as_ptr().add(8)),
        _mm_loadu_ps(buf.as_ptr().add(12)),
        _mm_loadu_ps(buf.as_ptr().add(16)),
        _mm_loadu_ps(buf.as_ptr().add(20)),
        _mm_loadu_ps(buf.as_ptr().add(24)),
        _mm_loadu_ps(buf.as_ptr().add(28)),
    ];
    let a_ptr = a_tile.as_ptr();
    let b_ptr = b_panel.as_ptr();
    for k in 0..k_dim {
        let b0 = _mm_loadu_ps(b_ptr.add(k * 8));
        let b1 = _mm_loadu_ps(b_ptr.add(k * 8 + 4));
        let a_col = a_ptr.add(k * MR);
        let a0 = _mm_set1_ps(*a_col);
        acc[0] = _mm_add_ps(acc[0], _mm_mul_ps(a0, b0));
        acc[1] = _mm_add_ps(acc[1], _mm_mul_ps(a0, b1));
        let a1 = _mm_set1_ps(*a_col.add(1));
        acc[2] = _mm_add_ps(acc[2], _mm_mul_ps(a1, b0));
        acc[3] = _mm_add_ps(acc[3], _mm_mul_ps(a1, b1));
        let a2 = _mm_set1_ps(*a_col.add(2));
        acc[4] = _mm_add_ps(acc[4], _mm_mul_ps(a2, b0));
        acc[5] = _mm_add_ps(acc[5], _mm_mul_ps(a2, b1));
        let a3 = _mm_set1_ps(*a_col.add(3));
        acc[6] = _mm_add_ps(acc[6], _mm_mul_ps(a3, b0));
        acc[7] = _mm_add_ps(acc[7], _mm_mul_ps(a3, b1));
    }
    for (i, v) in acc.into_iter().enumerate() {
        _mm_storeu_ps(buf.as_mut_ptr().add(i * 4), v);
    }
}

// ---------------------------------------------------------------------------
// Fused-gate slice kernels (used by `crate::infer`)
// ---------------------------------------------------------------------------

/// `dst[i] = (a[i] + b[i]) + c[i]` — the pre-activation sum of the fused
/// gate kernels, vectorized lane-per-element (bit-identical to the scalar
/// left-to-right sum).
pub fn add3(dst: &mut [f32], a: &[f32], b: &[f32], c: &[f32]) {
    assert!(dst.len() == a.len() && a.len() == b.len() && b.len() == c.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend gated on AVX2 support.
            unsafe { add3_avx2(dst, a, b, c) }
        }
        _ => add3_scalar(dst, a, b, c),
    }
}

fn add3_scalar(dst: &mut [f32], a: &[f32], b: &[f32], c: &[f32]) {
    for i in 0..dst.len() {
        dst[i] = a[i] + b[i] + c[i];
    }
}

/// # Safety
/// Requires AVX2; slices must be equal length (checked by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add3_avx2(dst: &mut [f32], a: &[f32], b: &[f32], c: &[f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let s = _mm256_add_ps(
            _mm256_add_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            ),
            _mm256_loadu_ps(c.as_ptr().add(i)),
        );
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), s);
        i += 8;
    }
    while i < n {
        dst[i] = a[i] + b[i] + c[i];
        i += 1;
    }
}

/// `dst[i] = (1 - z[i]) * h[i] + z[i] * cand[i]` — the fused GRU blend,
/// vectorized lane-per-element with the scalar operation order
/// (`sub`, `mul`, `mul`, `add`), so bits match the scalar kernel exactly.
pub fn gru_blend_slices(dst: &mut [f32], z: &[f32], h: &[f32], cand: &[f32]) {
    assert!(dst.len() == z.len() && z.len() == h.len() && h.len() == cand.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: backend gated on AVX2 support.
            unsafe { gru_blend_avx2(dst, z, h, cand) }
        }
        _ => gru_blend_scalar(dst, z, h, cand),
    }
}

fn gru_blend_scalar(dst: &mut [f32], z: &[f32], h: &[f32], cand: &[f32]) {
    for i in 0..dst.len() {
        dst[i] = (1.0 - z[i]) * h[i] + z[i] * cand[i];
    }
}

/// # Safety
/// Requires AVX2; slices must be equal length (checked by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gru_blend_avx2(dst: &mut [f32], z: &[f32], h: &[f32], cand: &[f32]) {
    use std::arch::x86_64::*;
    let one = _mm256_set1_ps(1.0);
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let zv = _mm256_loadu_ps(z.as_ptr().add(i));
        let hv = _mm256_loadu_ps(h.as_ptr().add(i));
        let cv = _mm256_loadu_ps(cand.as_ptr().add(i));
        let keep = _mm256_mul_ps(_mm256_sub_ps(one, zv), hv);
        let take = _mm256_mul_ps(zv, cv);
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(keep, take));
        i += 8;
    }
    while i < n {
        dst[i] = (1.0 - z[i]) * h[i] + z[i] * cand[i];
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in [Backend::Avx2, Backend::Sse2, Backend::Scalar] {
            assert_eq!(decode(encode(b)), b);
        }
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn scalar_always_supported_and_settable() {
        assert!(Backend::Scalar.supported());
        let before = active();
        assert!(set_backend(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        assert!(set_backend(before));
    }

    #[test]
    fn detect_is_among_supported() {
        assert!(supported_backends().contains(&detect()));
    }

    #[test]
    fn slice_kernels_match_scalar_bitwise() {
        let n = 37; // straddles the 8-lane boundary with a ragged tail
        let a: Vec<f32> = (0..n).map(|i| (i as f32 - 17.0) * 0.37).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin()).collect();
        let c: Vec<f32> = (0..n).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let z: Vec<f32> = (0..n)
            .map(|i| (i as f32 / n as f32).clamp(0.0, 1.0))
            .collect();

        let mut want_add = vec![0.0f32; n];
        add3_scalar(&mut want_add, &a, &b, &c);
        let mut want_blend = vec![0.0f32; n];
        gru_blend_scalar(&mut want_blend, &z, &a, &b);

        let before = active();
        for backend in supported_backends() {
            assert!(set_backend(backend));
            let mut got = vec![0.0f32; n];
            add3(&mut got, &a, &b, &c);
            for (g, w) in got.iter().zip(&want_add) {
                assert_eq!(g.to_bits(), w.to_bits(), "add3 drifted on {backend:?}");
            }
            let mut got = vec![0.0f32; n];
            gru_blend_slices(&mut got, &z, &a, &b);
            for (g, w) in got.iter().zip(&want_blend) {
                assert_eq!(g.to_bits(), w.to_bits(), "gru_blend drifted on {backend:?}");
            }
        }
        set_backend(before);
    }
}
