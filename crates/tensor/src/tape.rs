//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a computation graph of [`Matrix`] values for one forward
//! pass (typically one mini-batch). Calling [`Tape::backward`] propagates
//! gradients from a scalar loss to every node; [`Tape::flush_grads`] then
//! accumulates gradients of parameter leaves into the shared
//! [`crate::param::ParamStore`].
//!
//! The op set is deliberately small — just what recurrent/attention models
//! over EHR data need — and every op's backward rule is validated against
//! finite differences in `crate::gradcheck` tests.
//!
//! ## Buffer arena
//!
//! A tape owns a free-list of `f32` buffers recycled across training steps:
//! call [`Tape::reset`] instead of constructing a fresh tape each minibatch
//! and every node value/gradient allocated by the previous step is reused.
//! One epoch then settles into a steady state with essentially zero allocator
//! traffic from the tape — the dominant cost of the small per-feature models
//! this workspace trains (thousands of tiny nodes per batch).

use crate::matrix::Matrix;
use crate::param::{ParamId, ParamStore};

/// Which activation a fused gate applies (see [`Tape::gate_sigmoid`] /
/// [`Tape::gate_tanh`]). Both derivatives are computable from the output
/// value alone, which is what makes the fusion cheap in backward too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    Sigmoid,
    Tanh,
}

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// The operation that produced a node, holding parent handles.
#[derive(Debug, Clone)]
enum Op {
    /// Constant input (no gradient flows past it).
    Leaf,
    /// Parameter leaf; gradient is flushed to the store.
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `(r x c) + (1 x c)` — bias addition.
    AddRowBroadcast(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `(r x c) * (r x 1)` — per-row scaling (attention weights).
    MulColBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Transpose(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    SoftmaxRows(Var),
    SumCols(Var),
    SumRows(Var),
    MeanAll(Var),
    ConcatCols(Vec<Var>),
    SliceCols(Var, usize),
    /// Mean binary-cross-entropy over all elements, from logits.
    /// Stores targets (and optional per-element weights) as constants.
    BceWithLogits(Var, Matrix),
    /// Mean squared error against a constant target.
    Mse(Var, Matrix),
    /// Fused gate: `act(a + b + bias)` with `bias` a `1 x c` row vector.
    /// Collapses the add / add_row_broadcast / activation chain every
    /// GRU/LSTM gate records into one node.
    GateAct(Var, Var, Var, GateKind),
    /// Fused GRU state blend: `(1-z) ⊙ h + z ⊙ cand`.
    GruBlend(Var, Var, Var),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A single-pass computation graph.
pub struct Tape {
    nodes: Vec<Node>,
    /// Recycled `f32` buffers (the arena free-list); see the module docs.
    pool: Vec<Vec<f32>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(1024),
            pool: Vec::new(),
        }
    }

    /// Clears the graph for the next forward pass, recycling every node's
    /// value and gradient buffer into the arena. Reusing one tape via
    /// `reset` across minibatches is the allocation-free fast path; a fresh
    /// [`Tape::new`] per step stays correct but re-allocates every buffer.
    pub fn reset(&mut self) {
        let mut nodes = std::mem::take(&mut self.nodes);
        for node in nodes.drain(..) {
            self.reclaim(node.value);
            if let Some(g) = node.grad {
                self.reclaim(g);
            }
        }
        self.nodes = nodes;
    }

    /// Returns a value buffer to the arena.
    fn reclaim(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Pops a recycled buffer (emptied, capacity retained) or a fresh one.
    fn grab(&mut self) -> Vec<f32> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// An all-zero `rows x cols` matrix backed by the arena.
    fn alloc_zero(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.grab();
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Tape::backward`]; `None` if no gradient
    /// reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    // ---------------------------------------------------------------- leaves

    /// Records a constant (non-differentiable) input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a parameter leaf by copying its current value from the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let mut buf = self.grab();
        let src = store.value(id);
        buf.extend_from_slice(src.as_slice());
        let v = Matrix::from_vec(src.rows(), src.cols(), buf);
        self.push(v, Op::Param(id))
    }

    // ------------------------------------------------------------------ ops

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut out = self.alloc_zero(m, n);
        crate::gemm::gemm_into(
            false,
            false,
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            &mut out,
            true,
        );
        self.push(out, Op::MatMul(a, b))
    }

    /// Element-wise sum of equally shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut buf = self.grab();
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(am.shape(), bm.shape(), "add shape mismatch");
        buf.extend(
            am.as_slice()
                .iter()
                .zip(bm.as_slice())
                .map(|(&x, &y)| x + y),
        );
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Add(a, b))
    }

    /// `(r x c) + (1 x c)`: adds a row vector (bias) to every row.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let mut buf = self.grab();
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        assert_eq!(bm.rows(), 1, "bias must be a row vector");
        assert_eq!(am.cols(), bm.cols(), "bias width mismatch");
        let bias_row = bm.row(0);
        for r in 0..am.rows() {
            buf.extend(am.row(r).iter().zip(bias_row).map(|(&x, &b)| x + b));
        }
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::AddRowBroadcast(a, bias))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut buf = self.grab();
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(am.shape(), bm.shape(), "sub shape mismatch");
        buf.extend(
            am.as_slice()
                .iter()
                .zip(bm.as_slice())
                .map(|(&x, &y)| x - y),
        );
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let mut buf = self.grab();
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(am.shape(), bm.shape(), "mul shape mismatch");
        buf.extend(
            am.as_slice()
                .iter()
                .zip(bm.as_slice())
                .map(|(&x, &y)| x * y),
        );
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Mul(a, b))
    }

    /// `(r x c) * (r x 1)`: scales each row of `a` by the matching entry of
    /// the column vector `w` (e.g. per-sample attention weights).
    pub fn mul_col_broadcast(&mut self, a: Var, w: Var) -> Var {
        let mut buf = self.grab();
        let (am, wm) = (&self.nodes[a.0].value, &self.nodes[w.0].value);
        assert_eq!(wm.cols(), 1, "weight must be a column vector");
        assert_eq!(am.rows(), wm.rows(), "weight height mismatch");
        for r in 0..am.rows() {
            let s = wm[(r, 0)];
            buf.extend(am.row(r).iter().map(|&x| x * s));
        }
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::MulColBroadcast(a, w))
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut buf = self.grab();
        let am = &self.nodes[a.0].value;
        buf.extend(am.as_slice().iter().map(|&x| x * s));
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Scale(a, s))
    }

    /// Addition of a compile-time scalar.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let mut buf = self.grab();
        let am = &self.nodes[a.0].value;
        buf.extend(am.as_slice().iter().map(|&x| x + s));
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::AddScalar(a))
    }

    /// Convenience for `1 - a`, common in gated RNN cells.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut buf = self.grab();
        let am = &self.nodes[a.0].value;
        buf.extend(am.as_slice().iter().map(|&x| 1.0 / (1.0 + (-x).exp())));
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut buf = self.grab();
        let am = &self.nodes[a.0].value;
        buf.extend(am.as_slice().iter().map(|&x| x.tanh()));
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Tanh(a))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut buf = self.grab();
        let am = &self.nodes[a.0].value;
        buf.extend(am.as_slice().iter().map(|&x| x.max(0.0)));
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::Relu(a))
    }

    /// Fused sigmoid gate: `σ(a + b + bias)` in one node.
    ///
    /// Semantically identical to `sigmoid(add_row_broadcast(add(a, b), bias))`
    /// but records one node instead of three — the shape every GRU/LSTM gate
    /// takes (`x·W + h·U + b`).
    pub fn gate_sigmoid(&mut self, a: Var, b: Var, bias: Var) -> Var {
        self.gate_act(a, b, bias, GateKind::Sigmoid)
    }

    /// Fused tanh gate: `tanh(a + b + bias)` in one node (see
    /// [`Tape::gate_sigmoid`]).
    pub fn gate_tanh(&mut self, a: Var, b: Var, bias: Var) -> Var {
        self.gate_act(a, b, bias, GateKind::Tanh)
    }

    fn gate_act(&mut self, a: Var, b: Var, bias: Var, kind: GateKind) -> Var {
        let mut buf = self.grab();
        let (am, bm, biasm) = (
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            &self.nodes[bias.0].value,
        );
        assert_eq!(am.shape(), bm.shape(), "gate operand shape mismatch");
        assert_eq!(biasm.rows(), 1, "gate bias must be a row vector");
        assert_eq!(biasm.cols(), am.cols(), "gate bias width mismatch");
        let bias_row = biasm.row(0);
        for r in 0..am.rows() {
            let pre = am.row(r).iter().zip(bm.row(r)).zip(bias_row);
            match kind {
                GateKind::Sigmoid => {
                    buf.extend(pre.map(|((&x, &y), &c)| 1.0 / (1.0 + (-(x + y + c)).exp())));
                }
                GateKind::Tanh => {
                    buf.extend(pre.map(|((&x, &y), &c)| (x + y + c).tanh()));
                }
            }
        }
        let v = Matrix::from_vec(am.rows(), am.cols(), buf);
        self.push(v, Op::GateAct(a, b, bias, kind))
    }

    /// Fused GRU state blend: `(1 - z) ⊙ h + z ⊙ cand` in one node.
    ///
    /// Replaces the `one_minus` / `mul` / `mul` / `add` five-node chain at
    /// the end of every GRU step.
    pub fn gru_blend(&mut self, z: Var, h: Var, cand: Var) -> Var {
        let mut buf = self.grab();
        let (zm, hm, cm) = (
            &self.nodes[z.0].value,
            &self.nodes[h.0].value,
            &self.nodes[cand.0].value,
        );
        assert_eq!(zm.shape(), hm.shape(), "blend shape mismatch");
        assert_eq!(zm.shape(), cm.shape(), "blend shape mismatch");
        buf.extend(
            zm.as_slice()
                .iter()
                .zip(hm.as_slice())
                .zip(cm.as_slice())
                .map(|((&zi, &hi), &ci)| (1.0 - zi) * hi + zi * ci),
        );
        let v = Matrix::from_vec(zm.rows(), zm.cols(), buf);
        self.push(v, Op::GruBlend(z, h, cand))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row sums: `(r x c) -> (r x 1)`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum_cols();
        self.push(v, Op::SumCols(a))
    }

    /// Column sums: `(r x c) -> (1 x c)`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum_rows();
        self.push(v, Op::SumRows(a))
    }

    /// Mean of all elements: `-> (1 x 1)`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Horizontal concatenation of nodes sharing a row count.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one node");
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let v = Matrix::concat_cols(&mats);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Copy of columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.nodes[a.0].value.slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start))
    }

    /// Mean binary cross-entropy from logits against constant 0/1 targets.
    ///
    /// Numerically stable (`log1p`-based). Result is `1 x 1`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix) -> Var {
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.shape(), targets.shape(), "bce target shape mismatch");
        let n = z.len() as f32;
        let mut total = 0.0f64;
        for (&zi, &yi) in z.as_slice().iter().zip(targets.as_slice()) {
            // max(z,0) - z*y + ln(1 + e^{-|z|})
            let l = zi.max(0.0) - zi * yi + (-zi.abs()).exp().ln_1p();
            total += l as f64;
        }
        let v = Matrix::from_vec(1, 1, vec![(total / n as f64) as f32]);
        self.push(v, Op::BceWithLogits(logits, targets))
    }

    /// Mean squared error against a constant target. Result is `1 x 1`.
    pub fn mse(&mut self, pred: Var, targets: Matrix) -> Var {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.shape(), targets.shape(), "mse target shape mismatch");
        let n = p.len() as f32;
        let total: f32 = p
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        let v = Matrix::from_vec(1, 1, vec![total / n]);
        self.push(v, Op::Mse(pred, targets))
    }

    // ------------------------------------------------------------- backward

    fn grad_buf(&mut self, v: Var) -> &mut Matrix {
        if self.nodes[v.0].grad.is_none() {
            let (r, c) = self.nodes[v.0].value.shape();
            let m = self.alloc_zero(r, c);
            self.nodes[v.0].grad = Some(m);
        }
        self.nodes[v.0].grad.as_mut().unwrap()
    }

    /// Takes ownership of a node's gradient buffer (a zeroed arena buffer if
    /// none exists yet) so backward rules can accumulate into it while still
    /// reading other nodes' values; the caller must put it back.
    fn take_grad(&mut self, v: Var) -> Matrix {
        match self.nodes[v.0].grad.take() {
            Some(g) => g,
            None => {
                let (r, c) = self.nodes[v.0].value.shape();
                self.alloc_zero(r, c)
            }
        }
    }

    /// Runs reverse-mode differentiation seeded at `root` (gradient 1 for
    /// every element of `root`, which is normally a `1 x 1` loss).
    pub fn backward(&mut self, root: Var) {
        {
            if let Some(old) = self.nodes[root.0].grad.take() {
                self.reclaim(old);
            }
            let (r, c) = self.nodes[root.0].value.shape();
            let mut seed = self.alloc_zero(r, c);
            seed.as_mut_slice().fill(1.0);
            self.nodes[root.0].grad = Some(seed);
        }
        for i in (0..=root.0).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            let out_value = std::mem::replace(&mut self.nodes[i].value, Matrix::zeros(0, 0));
            self.propagate(&op, &out_value, &g);
            self.nodes[i].value = out_value;
            self.nodes[i].grad = Some(g);
        }
    }

    fn propagate(&mut self, op: &Op, out: &Matrix, g: &Matrix) {
        match op {
            Op::Leaf | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                // dA += g · Bᵀ ; dB += Aᵀ · g — transpose-fused GEMM, no
                // transposed copies and no gradient temporaries.
                let mut ga = self.take_grad(*a);
                crate::gemm::gemm_into(false, true, g, &self.nodes[b.0].value, &mut ga, true);
                self.nodes[a.0].grad = Some(ga);
                let mut gb = self.take_grad(*b);
                crate::gemm::gemm_into(true, false, &self.nodes[a.0].value, g, &mut gb, true);
                self.nodes[b.0].grad = Some(gb);
            }
            Op::Add(a, b) => {
                self.grad_buf(*a).add_assign(g);
                self.grad_buf(*b).add_assign(g);
            }
            Op::AddRowBroadcast(a, bias) => {
                self.grad_buf(*a).add_assign(g);
                let db = g.sum_rows();
                self.grad_buf(*bias).add_assign(&db);
            }
            Op::Sub(a, b) => {
                self.grad_buf(*a).add_assign(g);
                self.grad_buf(*b).add_scaled_assign(g, -1.0);
            }
            Op::Mul(a, b) => {
                let mut ga = self.take_grad(*a);
                for ((o, &gi), &bi) in ga
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(self.nodes[b.0].value.as_slice())
                {
                    *o += gi * bi;
                }
                self.nodes[a.0].grad = Some(ga);
                let mut gb = self.take_grad(*b);
                for ((o, &gi), &ai) in gb
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(self.nodes[a.0].value.as_slice())
                {
                    *o += gi * ai;
                }
                self.nodes[b.0].grad = Some(gb);
            }
            Op::MulColBroadcast(a, w) => {
                let wm = self.nodes[w.0].value.clone();
                let am = self.nodes[a.0].value.clone();
                // dA[r,c] = g[r,c] * w[r]
                let mut da = g.clone();
                for r in 0..da.rows() {
                    let s = wm[(r, 0)];
                    for c in 0..da.cols() {
                        da[(r, c)] *= s;
                    }
                }
                self.grad_buf(*a).add_assign(&da);
                // dW[r] = sum_c g[r,c] * a[r,c]
                let dw = g.mul(&am).sum_cols();
                self.grad_buf(*w).add_assign(&dw);
            }
            Op::Scale(a, s) => {
                self.grad_buf(*a).add_scaled_assign(g, *s);
            }
            Op::AddScalar(a) => {
                self.grad_buf(*a).add_assign(g);
            }
            Op::Transpose(a) => {
                let da = g.transpose();
                self.grad_buf(*a).add_assign(&da);
            }
            Op::Sigmoid(a) => {
                let buf = self.grad_buf(*a);
                for ((o, &gi), &yi) in buf
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(out.as_slice())
                {
                    *o += gi * yi * (1.0 - yi);
                }
            }
            Op::Tanh(a) => {
                let buf = self.grad_buf(*a);
                for ((o, &gi), &yi) in buf
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(out.as_slice())
                {
                    *o += gi * (1.0 - yi * yi);
                }
            }
            Op::Relu(a) => {
                let buf = self.grad_buf(*a);
                for ((o, &gi), &yi) in buf
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(out.as_slice())
                {
                    if yi > 0.0 {
                        *o += gi;
                    }
                }
            }
            Op::SoftmaxRows(a) => {
                // dx = y * (g - <g, y>_row)
                let mut da = Matrix::zeros(out.rows(), out.cols());
                for r in 0..out.rows() {
                    let dot: f32 = out
                        .row(r)
                        .iter()
                        .zip(g.row(r).iter())
                        .map(|(&y, &gi)| y * gi)
                        .sum();
                    for c in 0..out.cols() {
                        da[(r, c)] = out[(r, c)] * (g[(r, c)] - dot);
                    }
                }
                self.grad_buf(*a).add_assign(&da);
            }
            Op::SumCols(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Matrix::zeros(r, c);
                for i in 0..r {
                    let gi = g[(i, 0)];
                    for j in 0..c {
                        da[(i, j)] = gi;
                    }
                }
                self.grad_buf(*a).add_assign(&da);
            }
            Op::SumRows(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Matrix::zeros(r, c);
                for i in 0..r {
                    for j in 0..c {
                        da[(i, j)] = g[(0, j)];
                    }
                }
                self.grad_buf(*a).add_assign(&da);
            }
            Op::MeanAll(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let s = g[(0, 0)] / (r * c) as f32;
                let da = Matrix::full(r, c, s);
                self.grad_buf(*a).add_assign(&da);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for p in parts {
                    let w = self.nodes[p.0].value.cols();
                    let dp = g.slice_cols(offset, offset + w);
                    self.grad_buf(*p).add_assign(&dp);
                    offset += w;
                }
            }
            Op::SliceCols(a, start) => {
                let (r, _) = g.shape();
                let buf = self.grad_buf(*a);
                for i in 0..r {
                    for j in 0..g.cols() {
                        buf[(i, start + j)] += g[(i, j)];
                    }
                }
            }
            Op::BceWithLogits(logits, targets) => {
                let z = &self.nodes[logits.0].value;
                let n = z.len() as f32;
                let s = g[(0, 0)] / n;
                let dz = z.zip(targets, |zi, yi| {
                    let p = 1.0 / (1.0 + (-zi).exp());
                    (p - yi) * s
                });
                self.grad_buf(*logits).add_assign(&dz);
            }
            Op::Mse(pred, targets) => {
                let p = &self.nodes[pred.0].value;
                let n = p.len() as f32;
                let s = 2.0 * g[(0, 0)] / n;
                let dp = p.zip(targets, |a, b| (a - b) * s);
                self.grad_buf(*pred).add_assign(&dp);
            }
            Op::GateAct(a, b, bias, kind) => {
                // Pre-activation gradient gp = g · act'(y), with act'
                // computed from the output value alone:
                // σ: y(1-y); tanh: 1-y². Both summed operands receive gp,
                // the bias receives its column sums.
                let deriv = |gi: f32, yi: f32| match kind {
                    GateKind::Sigmoid => gi * yi * (1.0 - yi),
                    GateKind::Tanh => gi * (1.0 - yi * yi),
                };
                let mut ga = self.take_grad(*a);
                for ((o, &gi), &yi) in ga
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(out.as_slice())
                {
                    *o += deriv(gi, yi);
                }
                self.nodes[a.0].grad = Some(ga);
                let mut gb = self.take_grad(*b);
                for ((o, &gi), &yi) in gb
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(out.as_slice())
                {
                    *o += deriv(gi, yi);
                }
                self.nodes[b.0].grad = Some(gb);
                let mut gbias = self.take_grad(*bias);
                {
                    let row = gbias.row_mut(0);
                    for r in 0..out.rows() {
                        for ((o, &gi), &yi) in row.iter_mut().zip(g.row(r)).zip(out.row(r)) {
                            *o += deriv(gi, yi);
                        }
                    }
                }
                self.nodes[bias.0].grad = Some(gbias);
            }
            Op::GruBlend(z, h, cand) => {
                // y = (1-z)⊙h + z⊙cand:
                // dz += g⊙(cand-h); dh += g⊙(1-z); dcand += g⊙z.
                let mut gz = self.take_grad(*z);
                for (((o, &gi), &ci), &hi) in gz
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(self.nodes[cand.0].value.as_slice())
                    .zip(self.nodes[h.0].value.as_slice())
                {
                    *o += gi * (ci - hi);
                }
                self.nodes[z.0].grad = Some(gz);
                let mut gh = self.take_grad(*h);
                for ((o, &gi), &zi) in gh
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(self.nodes[z.0].value.as_slice())
                {
                    *o += gi * (1.0 - zi);
                }
                self.nodes[h.0].grad = Some(gh);
                let mut gc = self.take_grad(*cand);
                for ((o, &gi), &zi) in gc
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(self.nodes[z.0].value.as_slice())
                {
                    *o += gi * zi;
                }
                self.nodes[cand.0].grad = Some(gc);
            }
        }
    }

    /// Accumulates parameter-leaf gradients into the store.
    ///
    /// Call after [`Tape::backward`]. Nodes whose gradient never materialised
    /// (dead branches) are skipped.
    pub fn flush_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                store.accumulate_grad(*id, g);
            }
        }
    }

    /// Accumulates parameter-leaf gradients into a detached
    /// [`crate::param::GradBuffer`] instead of the shared store — the
    /// per-shard half of data-parallel training, where workers must not
    /// touch the store concurrently.
    pub fn flush_grads_into(&self, buf: &mut crate::param::GradBuffer) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                buf.accumulate(*id, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_matrix_ops() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = t.constant(Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).as_slice(), &[19., 22., 43., 50.]);
        let d = t.add(a, b);
        assert_eq!(t.value(d).as_slice(), &[6., 8., 10., 12.]);
    }

    #[test]
    fn backward_through_matmul() {
        // loss = mean(A*B); check dA and dB shapes/values.
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 2, vec![1., 2.]));
        let b = t.constant(Matrix::from_vec(2, 1, vec![3., 4.]));
        let c = t.matmul(a, b); // 1x1 = 11
        let l = t.mean_all(c);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().as_slice(), &[3., 4.]);
        assert_eq!(t.grad(b).unwrap().as_slice(), &[1., 2.]);
    }

    #[test]
    fn backward_through_sigmoid_chain() {
        // y = sigmoid(x); loss = mean(y). dy/dx = y(1-y)/n
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 1, vec![0.0]));
        let y = t.sigmoid(x);
        let l = t.mean_all(y);
        t.backward(l);
        let g = t.grad(x).unwrap()[(0, 0)];
        assert!((g - 0.25).abs() < 1e-6);
    }

    #[test]
    fn one_minus_matches_manual() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 2, vec![0.3, 0.9]));
        let y = t.one_minus(x);
        assert_eq!(t.value(y).as_slice(), &[0.7, 0.100000024]);
    }

    #[test]
    fn bce_with_logits_value() {
        // logit 0 against target 1 => ln 2
        let mut t = Tape::new();
        let z = t.constant(Matrix::from_vec(1, 1, vec![0.0]));
        let l = t.bce_with_logits(z, Matrix::from_vec(1, 1, vec![1.0]));
        assert!((t.value(l)[(0, 0)] - std::f32::consts::LN_2).abs() < 1e-6);
        t.backward(l);
        // d/dz = sigma(0) - 1 = -0.5
        assert!((t.grad(z).unwrap()[(0, 0)] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn bce_with_logits_extreme_logits_are_finite() {
        let mut t = Tape::new();
        let z = t.constant(Matrix::from_vec(1, 2, vec![100.0, -100.0]));
        let l = t.bce_with_logits(z, Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        assert!(t.value(l).all_finite());
        assert!(t.value(l)[(0, 0)] < 1e-3);
    }

    #[test]
    fn flush_grads_accumulates_into_store() {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![2.0]));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let x = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let y = t.mul(wv, x);
        let l = t.mean_all(y);
        t.backward(l);
        t.flush_grads(&mut ps);
        assert_eq!(ps.grad(w)[(0, 0)], 3.0);
    }

    #[test]
    fn grad_accumulates_across_multiple_uses() {
        // y = w*x1 + w*x2 — w used twice, grads must sum.
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let x1 = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let x2 = t.constant(Matrix::from_vec(1, 1, vec![5.0]));
        let a = t.mul(wv, x1);
        let b = t.mul(wv, x2);
        let y = t.add(a, b);
        let l = t.mean_all(y);
        t.backward(l);
        t.flush_grads(&mut ps);
        assert_eq!(ps.grad(w)[(0, 0)], 7.0);
    }

    #[test]
    fn concat_slice_round_trip_grads() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(2, 1, vec![1., 2.]));
        let b = t.constant(Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]));
        let c = t.concat_cols(&[a, b]);
        let s = t.slice_cols(c, 1, 3); // recover b
        assert_eq!(t.value(s).as_slice(), &[3., 4., 5., 6.]);
        let l = t.mean_all(s);
        t.backward(l);
        // Gradient reaches b, not a.
        assert_eq!(t.grad(b).unwrap().as_slice(), &[0.25; 4]);
        assert!(t.grad(a).unwrap().as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn softmax_rows_grad_sums_to_zero() {
        // For softmax followed by picking one coordinate, gradient over the
        // input row sums to ~0 (shift invariance).
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 3, vec![0.1, 0.5, -0.2]));
        let s = t.softmax_rows(x);
        let p = t.slice_cols(s, 1, 2);
        let l = t.mean_all(p);
        t.backward(l);
        let g = t.grad(x).unwrap();
        assert!(g.sum().abs() < 1e-6);
    }

    #[test]
    fn reset_recycles_buffers_and_keeps_results_identical() {
        // Train-loop shape: one tape reused across steps via reset() must
        // produce bit-identical values and gradients to fresh tapes.
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_vec(2, 2, vec![0.5, -0.3, 0.8, 0.1]));
        let run = |t: &mut Tape, ps: &ParamStore| -> (f32, Matrix) {
            let wv = t.param(ps, w);
            let x = t.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]));
            let y = t.matmul(x, wv);
            let s = t.sigmoid(y);
            let l = t.mean_all(s);
            t.backward(l);
            (t.value(l)[(0, 0)], t.grad(wv).unwrap().clone())
        };
        let mut reused = Tape::new();
        for _ in 0..3 {
            reused.reset();
            let (loss_reused, grad_reused) = run(&mut reused, &ps);
            let mut fresh = Tape::new();
            let (loss_fresh, grad_fresh) = run(&mut fresh, &ps);
            assert_eq!(loss_reused.to_bits(), loss_fresh.to_bits());
            for (a, b) in grad_reused.as_slice().iter().zip(grad_fresh.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn reset_empties_the_graph() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::zeros(4, 4));
        let _ = t.sigmoid(a);
        assert_eq!(t.len(), 2);
        t.reset();
        assert!(t.is_empty());
        // The tape is fully usable after reset.
        let b = t.constant(Matrix::full(2, 2, 1.0));
        let c = t.tanh(b);
        assert_eq!(t.value(c).shape(), (2, 2));
    }

    #[test]
    fn mul_col_broadcast_forward_and_backward() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let w = t.constant(Matrix::from_vec(2, 1, vec![10., 100.]));
        let y = t.mul_col_broadcast(a, w);
        assert_eq!(t.value(y).as_slice(), &[10., 20., 300., 400.]);
        let l = t.mean_all(y);
        t.backward(l);
        let gw = t.grad(w).unwrap();
        // dW[r] = sum_c a[r,c] / 4
        assert_eq!(gw.as_slice(), &[0.75, 1.75]);
    }
}
