//! Property tests for the blocked GEMM kernel's 0-ULP determinism contract.
//!
//! The contract (see `cohortnet_tensor::gemm`): every output element is one
//! f32 accumulation chain over `k` in strictly increasing order, starting
//! from the prior value (zero when not accumulating). All four transpose
//! variants, the packed/blocked path, the small path, and every thread count
//! must produce bit-identical results to the branch-free naive reference
//! below — not merely close, *equal to the bit*.
//!
//! Sizes and fills are drawn from the in-tree `proptest` stand-in; matrices
//! are filled from a drawn `u64` seed (the stand-in has no `prop_flat_map`,
//! so dependent lengths are derived in the body). Fills inject exact `0.0`
//! and `-0.0` entries so any sparsity branch (`a_ik == 0.0` skips) would be
//! caught: skipping a `+ 0.0 * b` term changes `-0.0` outcomes and rounding.

use cohortnet_tensor::gemm::{gemm_into, set_gemm_threads};
use cohortnet_tensor::simd::{set_backend, supported_backends};
use cohortnet_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random matrix with ~15% exact signed zeros.
fn fill(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen_bool(0.15) {
                if rng.gen_bool(0.5) {
                    0.0
                } else {
                    -0.0
                }
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Branch-free naive reference: one k-ascending chain per output element,
/// seeded from the prior `out` value.
fn naive(ta: bool, tb: bool, a: &Matrix, b: &Matrix, out: &mut Matrix, k_dim: usize) {
    let (m, n) = out.shape();
    for i in 0..m {
        for j in 0..n {
            let mut acc = out[(i, j)];
            for k in 0..k_dim {
                let av = if ta { a[(k, i)] } else { a[(i, k)] };
                let bv = if tb { b[(j, k)] } else { b[(k, j)] };
                acc += av * bv;
            }
            out[(i, j)] = acc;
        }
    }
}

fn assert_bits_equal(got: &Matrix, want: &Matrix, ctx: &str) -> Result<(), TestCaseError> {
    for (idx, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        prop_assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: element {idx} differs: {g} vs {w}"
        );
    }
    Ok(())
}

fn operand_shapes(
    ta: bool,
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
) -> ((usize, usize), (usize, usize)) {
    let a_shape = if ta { (k, m) } else { (m, k) };
    let b_shape = if tb { (n, k) } else { (k, n) };
    (a_shape, b_shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four transpose variants, plain and accumulating, hit the naive
    /// chain bit-for-bit on small-path sizes.
    #[test]
    fn small_sizes_match_naive_bitwise(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        ta in coin(),
        tb in coin(),
        accumulate in coin(),
        seed in 0u64..u64::MAX,
    ) {
        check_variant(m, k, n, ta, tb, accumulate, seed)?;
    }

    /// Sizes large enough to engage the packed/blocked path (and, above the
    /// parallel work threshold, row-block parallelism) still match naive.
    #[test]
    fn blocked_sizes_match_naive_bitwise(
        m in 24usize..80,
        k in 16usize..64,
        n in 24usize..80,
        ta in coin(),
        tb in coin(),
        accumulate in coin(),
        seed in 0u64..u64::MAX,
    ) {
        check_variant(m, k, n, ta, tb, accumulate, seed)?;
    }

    /// Thread count never changes a single bit: parallelism only splits
    /// disjoint output row blocks, it never splits a k chain.
    #[test]
    fn thread_count_is_invisible(
        m in 32usize..96,
        k in 16usize..64,
        n in 32usize..96,
        ta in coin(),
        tb in coin(),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ((am, ak), (bm, bk)) = operand_shapes(ta, tb, m, k, n);
        let a = fill(am, ak, &mut rng);
        let b = fill(bm, bk, &mut rng);
        set_gemm_threads(1);
        let mut base = Matrix::zeros(m, n);
        gemm_into(ta, tb, &a, &b, &mut base, false);
        // Neither thread count nor SIMD backend may change a bit — sweep the
        // cross product against the sequential result.
        for backend in supported_backends() {
            prop_assert!(set_backend(backend));
            for threads in [1usize, 2, 4, 8] {
                set_gemm_threads(threads);
                let mut out = Matrix::zeros(m, n);
                gemm_into(ta, tb, &a, &b, &mut out, false);
                assert_bits_equal(
                    &out,
                    &base,
                    &format!("backend={} threads={threads}", backend.name()),
                )?;
            }
        }
        set_gemm_threads(1);
    }

    /// The public `Matrix` wrappers route through the same kernel.
    #[test]
    fn matrix_wrappers_agree_with_kernel(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(m, k, &mut rng);
        let b = fill(k, n, &mut rng);
        let at = fill(k, m, &mut rng);
        let bt = fill(n, k, &mut rng);

        let mut want = Matrix::zeros(m, n);
        gemm_into(false, false, &a, &b, &mut want, false);
        assert_bits_equal(&a.matmul(&b), &want, "matmul")?;

        let mut want_tn = Matrix::zeros(m, n);
        gemm_into(true, false, &at, &b, &mut want_tn, false);
        assert_bits_equal(&at.matmul_tn(&b), &want_tn, "matmul_tn")?;

        let mut want_nt = Matrix::zeros(m, n);
        gemm_into(false, true, &a, &bt, &mut want_nt, false);
        assert_bits_equal(&a.matmul_nt(&bt), &want_nt, "matmul_nt")?;

        let mut acc = fill(m, n, &mut rng);
        let mut want_acc = acc.clone();
        naive(false, false, &a, &b, &mut want_acc, k);
        a.matmul_acc(&b, &mut acc);
        assert_bits_equal(&acc, &want_acc, "matmul_acc")?;
    }
}

/// `bool` implements `Strategy` as a fair coin (the value itself is
/// ignored); this name just makes the draw sites read as intended.
fn coin() -> bool {
    true
}

fn check_variant(
    m: usize,
    k: usize,
    n: usize,
    ta: bool,
    tb: bool,
    accumulate: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ((am, ak), (bm, bk)) = operand_shapes(ta, tb, m, k, n);
    let a = fill(am, ak, &mut rng);
    let b = fill(bm, bk, &mut rng);
    let out = if accumulate {
        fill(m, n, &mut rng)
    } else {
        Matrix::zeros(m, n)
    };
    let mut want = if accumulate {
        out.clone()
    } else {
        Matrix::zeros(m, n)
    };
    naive(ta, tb, &a, &b, &mut want, k);
    // Every supported SIMD backend must hit the same naive chain bitwise.
    for backend in supported_backends() {
        prop_assert!(set_backend(backend));
        let mut got = out.clone();
        gemm_into(ta, tb, &a, &b, &mut got, accumulate);
        assert_bits_equal(
            &got,
            &want,
            &format!(
                "m={m} k={k} n={n} ta={ta} tb={tb} acc={accumulate} backend={}",
                backend.name()
            ),
        )?;
    }
    Ok(())
}
