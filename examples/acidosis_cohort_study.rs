//! An automated cohort study: rediscovering respiratory acidosis.
//!
//! The classical workflow — an expert defines a pattern (e.g. "PCO₂
//! elevated with low respiratory rate"), retrieves the matching patients,
//! and compares their outcomes against the rest — is what CohortNet
//! automates. This example runs the auto-discovery pipeline and then checks
//! the result the way a clinician would: does the pool contain a
//! blood-gas-derangement cohort, and does that cohort carry excess
//! mortality?
//!
//! Because the synthetic generator plants a respiratory-acidosis archetype
//! (RR↓, PCO₂↑, HCO₃↑ — see `cohortnet_ehr::archetypes`), the example can
//! also validate the discovered cohort against ground truth, something no
//! real-world study can do.
//!
//! Run: `cargo run --release --example acidosis_cohort_study`

use cohortnet::config::CohortNetConfig;
use cohortnet::interpret::{build_context, pattern_string};
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;

fn main() {
    let mut profile = profiles::mimic3_like(0.4);
    profile.time_steps = 12;
    let mut ds = generate(&profile);
    let raw = ds.clone();
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 5;
    cfg.epochs_exploit = 2;
    let prep = prepare(&ds);
    let trained = train_cohortnet(&prep, &cfg);
    let ctx = build_context(&trained.model, &trained.params, &prep, &scaler);
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    let background = ds.positive_rate();

    // A "blood-gas derangement" cohort: anchored on RR, PCO2 or HCO3, with
    // at least one involved state whose mean value lies outside the normal
    // range, elevated mortality, and solid evidence.
    let gas_features: Vec<usize> = ["RR", "PCO2", "HCO3"]
        .iter()
        .map(|c| ds.feature_column(c))
        .collect();
    let mut findings = Vec::new();
    for &f in &gas_features {
        for c in &pool.per_feature[f] {
            let abnormal = c.pattern.iter().any(|&(pf, s)| {
                let def = ds.feature_def(pf);
                match ctx.summaries[pf].mean_raw[s as usize] {
                    Some(v) => v > def.normal_hi || v < def.normal_lo,
                    None => false,
                }
            });
            if abnormal && c.pos_rate[0] as f64 > background * 1.5 && c.n_patients >= 15 {
                findings.push(c);
            }
        }
    }
    findings.sort_by(|a, b| b.pos_rate[0].partial_cmp(&a.pos_rate[0]).unwrap());

    println!("=== Automated cohort study: blood-gas derangement ===");
    println!("background mortality: {:.1}%\n", background * 100.0);
    for c in findings.iter().take(5) {
        println!(
            "cohort (n={}, freq={}, mortality {:.1}%): {}",
            c.n_patients,
            c.frequency,
            c.pos_rate[0] * 100.0,
            pattern_string(&c.pattern, &ds, &ctx.summaries)
        );
    }

    // Ground-truth check: of the patients in the top finding, how many carry
    // the planted respiratory-acidosis archetype (index 0)?
    if let Some(top) = findings.first() {
        let grid_len = prep.time_steps * prep.n_features;
        let mut members = 0usize;
        let mut acidotic = 0usize;
        for p in 0..raw.n_patients() {
            let grid = &ctx.states.data[p * grid_len..(p + 1) * grid_len];
            let bits = pool.bitmap(top.feature, grid, prep.time_steps, prep.n_features);
            if let Some(q) = pool.lookup(top.feature, top.key) {
                if bits[q] {
                    members += 1;
                    if raw.patients[p].archetypes.contains(&0) {
                        acidotic += 1;
                    }
                }
            }
        }
        let base_rate = raw
            .patients
            .iter()
            .filter(|p| p.archetypes.contains(&0))
            .count() as f64
            / raw.n_patients() as f64;
        println!(
            "\nground truth: {:.0}% of the top cohort's {} members carry the planted \
             respiratory-acidosis archetype (population base rate {:.0}%)",
            100.0 * acidotic as f64 / members.max(1) as f64,
            members,
            100.0 * base_rate
        );
    } else {
        println!("\nno qualifying cohort found — increase scale or epochs");
    }
}
