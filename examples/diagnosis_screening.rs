//! Multi-label diagnosis screening on the eICU-like profile: the paper's
//! second downstream task (§4.1). Trains CohortNet on 25 diagnosis labels,
//! reports macro metrics, and shows how a single discovered cohort's label
//! distribution doubles as a differential-diagnosis hint.
//!
//! Run: `cargo run --release --example diagnosis_screening`

use cohortnet::config::CohortNetConfig;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::archetypes::ARCHETYPES;
use cohortnet_ehr::{profiles, split::split_80_10_10, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::evaluate;

fn main() {
    let mut profile = profiles::eicu_like(0.25);
    profile.time_steps = 12;
    let ds = generate(&profile);
    let split = split_80_10_10(&ds, 7);
    let mut train_ds = ds.subset(&split.train);
    let mut test_ds = ds.subset(&split.test);
    let scaler = Standardizer::fit(&train_ds);
    scaler.apply(&mut train_ds);
    scaler.apply(&mut test_ds);

    let mut cfg = CohortNetConfig::for_dataset(&train_ds, &scaler);
    cfg.epochs_pretrain = 4;
    cfg.epochs_exploit = 2;
    println!(
        "diagnosis prediction: {} admissions, {} features, {} labels",
        ds.n_patients(),
        ds.n_features(),
        ds.task.n_labels()
    );

    let trained = train_cohortnet(&prepare(&train_ds), &cfg);
    let report = evaluate(&trained.model, &trained.params, &prepare(&test_ds), 64);
    println!(
        "macro test metrics: AUC-ROC {:.3} | AUC-PR {:.3} | F1 {:.3}\n",
        report.auc_roc, report.auc_pr, report.f1
    );

    // Differential-diagnosis hint: the cohort whose label distribution is
    // most concentrated (lowest entropy over its positive labels).
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    let best = pool
        .per_feature
        .iter()
        .flatten()
        .filter(|c| c.n_patients >= 20)
        .max_by(|a, b| {
            let peak = |c: &cohortnet::Cohort| c.pos_rate.iter().cloned().fold(0.0f32, f32::max);
            peak(a).partial_cmp(&peak(b)).unwrap()
        });
    if let Some(c) = best {
        println!(
            "most label-specific cohort (anchor {}, n={}):",
            train_ds.feature_def(c.feature).code,
            c.n_patients
        );
        let mut labelled: Vec<(usize, f32)> = c
            .pos_rate
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, r)| r > 0.2)
            .collect();
        labelled.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (l, r) in labelled.into_iter().take(5) {
            // Which planted condition usually fires this label?
            let source = ARCHETYPES
                .iter()
                .find(|a| a.diagnosis_labels.contains(&l))
                .map_or("background", |a| a.name);
            println!(
                "  label {l:>2}: {:.0}% of cohort (typically from: {source})",
                r * 100.0
            );
        }
    }
}
