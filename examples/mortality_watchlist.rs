//! ICU mortality watch-list: the clinical-triage scenario from the paper's
//! introduction. Train CohortNet, rank incoming (test) patients by their
//! cohort-calibrated mortality risk, and explain the top of the list with
//! the cohorts that drove each alert.
//!
//! Run: `cargo run --release --example mortality_watchlist`

use cohortnet::config::CohortNetConfig;
use cohortnet::interpret::{build_context, explain_patient, pattern_string};
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, split::split_80_10_10, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::predict_probs;

fn main() {
    let mut profile = profiles::mimic3_like(0.3);
    profile.time_steps = 12;
    let ds = generate(&profile);
    let split = split_80_10_10(&ds, 7);
    let mut train_ds = ds.subset(&split.train);
    let mut test_ds = ds.subset(&split.test);
    let scaler = Standardizer::fit(&train_ds);
    scaler.apply(&mut train_ds);
    scaler.apply(&mut test_ds);

    let mut cfg = CohortNetConfig::for_dataset(&train_ds, &scaler);
    cfg.epochs_pretrain = 5;
    cfg.epochs_exploit = 3;
    let train_prep = prepare(&train_ds);
    let trained = train_cohortnet(&train_prep, &cfg);
    let ctx = build_context(&trained.model, &trained.params, &train_prep, &scaler);
    let pool = &trained.model.discovery.as_ref().unwrap().pool;

    // Rank the incoming patients by calibrated risk.
    let test_prep = prepare(&test_ds);
    let probs = predict_probs(&trained.model, &trained.params, &test_prep, 64);
    let mut ranked: Vec<(usize, f32)> = probs.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "=== ICU mortality watch-list (top 5 of {} admissions) ===\n",
        ranked.len()
    );
    for &(p, risk) in ranked.iter().take(5) {
        let truth = test_ds.patients[p].mortality() != 0;
        let exp = explain_patient(&trained.model, &trained.params, &test_prep, p);
        println!(
            "patient #{p}: risk {:.0}% (individual {:.0}% -> calibrated {:.0}%) | outcome: {}",
            risk * 100.0,
            exp.base_prob[0] * 100.0,
            exp.full_prob[0] * 100.0,
            if truth { "died" } else { "survived" }
        );
        for c in exp.cohorts.iter().take(2) {
            let cohort = &pool.per_feature[c.feature][c.cohort];
            println!(
                "    cohort [{}] score {:+.3} (n={}, mortality {:.0}%): {}",
                test_ds.feature_def(c.feature).code,
                c.score,
                cohort.n_patients,
                cohort.pos_rate[0] * 100.0,
                pattern_string(&cohort.pattern, &test_ds, &ctx.summaries)
            );
        }
        println!();
    }
}
