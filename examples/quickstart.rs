//! Quickstart: train CohortNet end-to-end on a small synthetic EHR dataset
//! and inspect what it discovered.
//!
//! Run: `cargo run --release --example quickstart`

use cohortnet::config::CohortNetConfig;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, split::split_80_10_10, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::evaluate;

fn main() {
    // 1. Data: a MIMIC-III-like synthetic profile (500 admissions, 12 bins
    //    over the first 48 ICU hours).
    let mut profile = profiles::mimic3_like(0.25);
    profile.time_steps = 12;
    let ds = generate(&profile);
    println!(
        "dataset: {} admissions, {} features, {:.1}% mortality",
        ds.n_patients(),
        ds.n_features(),
        ds.positive_rate() * 100.0
    );

    // 2. Split and standardise (statistics fitted on train only).
    let split = split_80_10_10(&ds, 7);
    let mut train_ds = ds.subset(&split.train);
    let mut test_ds = ds.subset(&split.test);
    let scaler = Standardizer::fit(&train_ds);
    scaler.apply(&mut train_ds);
    scaler.apply(&mut test_ds);

    // 3. Configure and train the four-step pipeline.
    let mut cfg = CohortNetConfig::for_dataset(&train_ds, &scaler);
    cfg.epochs_pretrain = 4;
    cfg.epochs_exploit = 2;
    cfg.verbose = true;
    let trained = train_cohortnet(&prepare(&train_ds), &cfg);

    // 4. What did it discover?
    let discovery = trained.model.discovery.as_ref().unwrap();
    println!(
        "\ndiscovered {} cohorts across {} features (avg {:.1} patients each)",
        discovery.pool.total_cohorts(),
        train_ds.n_features(),
        discovery.pool.avg_patients_per_cohort()
    );

    // 5. Evaluate on the held-out test split.
    let report = evaluate(&trained.model, &trained.params, &prepare(&test_ds), 64);
    println!(
        "test metrics: AUC-ROC {:.3} | AUC-PR {:.3} | F1 {:.3}",
        report.auc_roc, report.auc_pr, report.f1
    );
}
