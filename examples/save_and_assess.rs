//! Persistence workflow: train once, save the parameters and the cohort
//! pool, reload everything into a fresh process, and assess a new patient —
//! the deployment path a hospital integration would take.
//!
//! Run: `cargo run --release --example save_and_assess`

use cohortnet::config::CohortNetConfig;
use cohortnet::export::{pool_from_str, pool_to_string};
use cohortnet::model::CohortNetModel;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::predict_probs;
use cohortnet_tensor::checkpoint::{load_params, save_params};
use cohortnet_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Training side -----------------------------------------------------
    let mut profile = profiles::mimic3_like(0.15);
    profile.time_steps = 10;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 3;
    cfg.epochs_exploit = 2;
    let prep = prepare(&ds);
    let trained = train_cohortnet(&prep, &cfg);
    let discovery = trained.model.discovery.as_ref().unwrap();

    // Persist: parameters + cohort pool (both plain text, no dependencies).
    let params_txt = save_params(&trained.params);
    let pool_txt = pool_to_string(&discovery.pool);
    println!(
        "saved checkpoint: {} params ({} KiB), pool of {} cohorts ({} KiB)",
        trained.params.len(),
        params_txt.len() / 1024,
        discovery.pool.total_cohorts(),
        pool_txt.len() / 1024
    );

    // --- Deployment side ---------------------------------------------------
    // Rebuild the same architecture, load weights, reattach the pool and the
    // state models (centroids travel with the discovery artefacts; here we
    // reuse them directly — a full deployment would persist the centroids
    // the same way as the pool).
    let mut ps2 = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model2 = CohortNetModel::new(&mut ps2, &mut rng, &cfg);
    load_params(&mut ps2, &params_txt).expect("architecture matches");
    let mut discovery2 = discovery.clone();
    discovery2.pool = pool_from_str(&pool_txt).expect("pool parses");
    model2.discovery = Some(discovery2);

    // The reloaded model reproduces the original predictions exactly.
    let original = predict_probs(&trained.model, &trained.params, &prep, 64);
    let reloaded = predict_probs(&model2, &ps2, &prep, 64);
    let max_diff = original
        .iter()
        .zip(&reloaded)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max prediction difference after reload: {max_diff:.2e}");
    assert!(max_diff < 1e-5, "reload drifted");

    // Assess one "new" patient.
    let risk = reloaded[0];
    println!(
        "new patient assessed from the reloaded model: risk {:.1}%",
        risk * 100.0
    );
}
