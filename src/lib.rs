//! Workspace facade for the CohortNet reproduction.
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can depend on a single package. Library users should depend on the
//! individual crates (`cohortnet`, `cohortnet-ehr`, …) directly.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cohortnet;
pub use cohortnet_clustering;
pub use cohortnet_ehr;
pub use cohortnet_metrics;
pub use cohortnet_models;
pub use cohortnet_tensor;
