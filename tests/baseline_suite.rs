//! Integration checks over the baseline lineup: all nine baselines train on
//! the same planted-signal dataset, produce finite probabilities, and the
//! models with recurrent memory beat chance.

use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::baselines::*;
use cohortnet_models::data::{prepare, Prepared};
use cohortnet_models::trainer::{evaluate, predict_probs, train, TrainConfig};
use cohortnet_models::SequenceModel;
use cohortnet_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Prepared {
    let mut cfg = profiles::mimic3_like(0.1);
    cfg.n_patients = 200;
    cfg.time_steps = 8;
    cfg.healthy_rate = 0.5;
    let mut ds = generate(&cfg);
    Standardizer::fit(&ds).apply(&mut ds);
    prepare(&ds)
}

fn check(model: &mut dyn SequenceModel, ps: &mut ParamStore, prep: &Prepared) {
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 32,
        lr: 3e-3,
        ..Default::default()
    };
    let stats = train(model, ps, prep, &cfg);
    assert!(
        stats.epoch_losses.iter().all(|l| l.is_finite()),
        "{}: non-finite loss",
        model.name()
    );
    let probs = predict_probs(model, ps, prep, 64);
    assert!(probs
        .iter()
        .all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
    let report = evaluate(model, ps, prep, 64);
    assert!(
        report.auc_roc > 0.58,
        "{}: train AUC-ROC {:.3} — failed to learn planted signal",
        model.name(),
        report.auc_roc
    );
}

#[test]
fn all_nine_baselines_learn() {
    let prep = dataset();
    let nf = prep.n_features;
    let mut rng = StdRng::seed_from_u64(77);

    macro_rules! run {
        ($ctor:expr) => {{
            let mut ps = ParamStore::new();
            #[allow(clippy::redundant_closure_call)]
            let mut m = $ctor(&mut ps, &mut rng);
            check(&mut m, &mut ps, &prep);
        }};
    }

    run!(|ps: &mut ParamStore, rng: &mut StdRng| LstmModel::new(ps, rng, nf, 1, 16));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| GruModel::new(ps, rng, nf, 1, 16));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| RetainModel::new(ps, rng, nf, 1, 10));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| DipoleModel::new(ps, rng, nf, 1, 10));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| StageNetModel::new(ps, rng, nf, 1, 16));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| TLstmModel::new(ps, rng, nf, 1, 16));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| ConCareModel::new(ps, rng, nf, 1, 5));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| GraspModel::new(ps, rng, nf, 1, 16, 4));
    run!(|ps: &mut ParamStore, rng: &mut StdRng| PpnModel::new(ps, rng, nf, 1, 16, 6));
}

#[test]
fn multilabel_heads_work_for_all_architectures() {
    let mut cfg = profiles::eicu_like(0.05);
    cfg.n_patients = 60;
    cfg.time_steps = 5;
    let mut ds = generate(&cfg);
    Standardizer::fit(&ds).apply(&mut ds);
    let prep = prepare(&ds);
    let nf = prep.n_features;
    let mut rng = StdRng::seed_from_u64(5);
    let mut ps = ParamStore::new();
    let mut model = DipoleModel::new(&mut ps, &mut rng, nf, 25, 8);
    let stats = train(
        &mut model,
        &mut ps,
        &prep,
        &TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..Default::default()
        },
    );
    assert!(stats.epoch_losses[0].is_finite());
    let probs = predict_probs(&model, &ps, &prep, 32);
    assert_eq!(probs.len(), prep.patients.len() * 25);
}
