//! Chaos end-to-end suite: seeded fault plans driven over a real socket
//! against the full serving stack. Three guarantees under test:
//!
//! (a) **Bit-identity under faults** — requests that are not themselves
//!     faulted score bit-identically to a fault-free run (the engine's
//!     rescue path re-scores rows individually, and row independence makes
//!     the rescued result equal to the unfaulted one).
//! (b) **Panic survival** — the server absorbs N injected worker panics,
//!     keeps answering, and reports exactly N engine restarts on
//!     `/metrics`.
//! (c) **Stall isolation** — a slow/stalled client never blocks other
//!     connections; it is eventually answered `408` by the read timeout.
//!
//! Determinism rules: plans are seeded, servers run `threads: 1`, and
//! requests are driven sequentially, so every site's call order — and
//! therefore every injection decision — replays exactly.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use cohortnet::snapshot::load_snapshot;
use cohortnet_chaos::{install, ChaosPlan, When};
use cohortnet_serve::client::{request, RetryPolicy};
use cohortnet_serve::{demo, serve, EngineConfig, ServerConfig};

/// Chaos plans are process-global; every test in this binary serialises on
/// this lock so one test's plan never leaks into another's call counters.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The demo model is deterministic but takes seconds to train; share one
/// bundle across the whole binary.
fn bundle() -> &'static demo::DemoBundle {
    static BUNDLE: OnceLock<demo::DemoBundle> = OnceLock::new();
    BUNDLE.get_or_init(demo::demo_bundle)
}

/// A single-threaded, deterministic server: one `score_requests` call per
/// minibatch, so the `infer.worker` site's call index equals the batch
/// ordinal (rescued rows append further calls).
fn start_server() -> cohortnet_serve::Server {
    let loaded = load_snapshot(&bundle().snapshot).expect("snapshot loads");
    serve(
        loaded,
        ServerConfig {
            port: 0,
            read_timeout_ms: 400,
            engine: EngineConfig {
                max_batch: 16,
                max_delay_us: 500,
                threads: 1,
                queue_cap: 64,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

fn join(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn score_body(examples: &[cohortnet::infer::ScoreRequest]) -> String {
    let instances: Vec<String> = examples
        .iter()
        .map(|e| format!("{{\"x\":[{}],\"mask\":[{}]}}", join(&e.x), join(&e.mask)))
        .collect();
    format!("{{\"instances\":[{}]}}", instances.join(","))
}

/// Sends every example solo, then all of them as one batch; returns all
/// response bodies in order. Panics on any non-200.
fn drive_scores(addr: SocketAddr) -> Vec<String> {
    let mut bodies = Vec::new();
    for e in &bundle().examples {
        let resp = request(addr, "POST", "/score", &score_body(std::slice::from_ref(e)))
            .expect("solo request");
        assert_eq!(resp.status, 200, "solo score failed: {}", resp.body);
        bodies.push(resp.body);
    }
    let resp =
        request(addr, "POST", "/score", &score_body(&bundle().examples)).expect("batch request");
    assert_eq!(resp.status, 200, "batch score failed: {}", resp.body);
    bodies.push(resp.body);
    bodies
}

/// Reads the value of a counter family from a `/metrics` response body.
fn metric_value(metrics_body: &str, family: &str) -> Option<f64> {
    metrics_body.lines().find_map(|line| {
        let rest = line.strip_prefix(family)?;
        rest.trim().parse().ok()
    })
}

fn fetch_metrics(addr: SocketAddr) -> String {
    let resp = request(addr, "GET", "/metrics", "").expect("/metrics");
    assert_eq!(resp.status, 200);
    resp.body
}

/// (a) Bit-identity: a run poisoned with worker panics and injected latency
/// must return byte-identical score bodies to a fault-free run — the
/// faulted batches are rescued row-by-row, and delays never touch values.
#[test]
fn poisoned_run_scores_bit_identical_to_fault_free_run() {
    let _s = serial();

    // Fault-free reference run.
    let server = start_server();
    let reference = drive_scores(server.addr());
    server.shutdown();

    // Poisoned run at seed 42: panic the 2nd and 9th `score_requests`
    // calls — two solo batches (each rescue re-scores the row as the next
    // call, shifting later indices) — plus probabilistic latency, which is
    // value-neutral by contract.
    let plan = ChaosPlan::new(42)
        .site("infer.worker", When::At(vec![2, 9]), 0)
        .site("infer.latency", When::Prob(0.25), 5);
    let guard = install(plan);
    let server = start_server();
    let poisoned = drive_scores(server.addr());

    let metrics = fetch_metrics(server.addr());
    let restarts = metric_value(&metrics, "cohortnet_engine_restarts_total ")
        .expect("engine restart counter on /metrics");
    assert!(
        restarts >= 2.0,
        "expected both injected panics captured, saw {restarts} restarts"
    );
    server.shutdown();
    drop(guard);

    assert_eq!(
        reference.len(),
        poisoned.len(),
        "runs answered different request counts"
    );
    for (i, (want, got)) in reference.iter().zip(&poisoned).enumerate() {
        assert_eq!(
            want, got,
            "request {i} scored differently under the seed-42 fault plan"
        );
    }
}

/// (b) Panic survival: N injected worker panics on solo batches → the
/// server answers every request and `/metrics` reports exactly N engine
/// restarts (each rescue re-scores the one row successfully).
#[test]
fn server_survives_n_worker_panics_and_counts_restarts() {
    let _s = serial();
    // Solo batches make call indices exact: batch k is call 2k-1 when every
    // odd call panics and its rescue consumes the following (even) call.
    let n_panics = 3u64;
    let plan = ChaosPlan::new(7).site("infer.worker", When::At(vec![1, 3, 5]), 0);
    let guard = install(plan);
    let server = start_server();
    let addr = server.addr();

    for (k, e) in bundle().examples.iter().take(5).enumerate() {
        let resp =
            request(addr, "POST", "/score", &score_body(std::slice::from_ref(e))).expect("request");
        assert_eq!(
            resp.status, 200,
            "request {k} failed under panic injection: {}",
            resp.body
        );
        assert!(resp.body.contains("\"prob\""), "{}", resp.body);
    }

    let metrics = fetch_metrics(addr);
    let restarts = metric_value(&metrics, "cohortnet_engine_restarts_total ")
        .expect("engine restart counter on /metrics");
    assert_eq!(
        restarts, n_panics as f64,
        "engine restarts must equal the number of injected panics"
    );
    let injected = metric_value(&metrics, "cohortnet_chaos_injected_infer_worker_total ")
        .expect("chaos site counter on /metrics");
    assert!(
        injected >= n_panics as f64,
        "chaos counter should record the injections, saw {injected}"
    );
    server.shutdown();
    drop(guard);
}

/// (c) Stall isolation: stalled clients (connected, half a request written,
/// then silent) never block healthy traffic, and each eventually gets `408`
/// from the configured read timeout instead of pinning a thread for 10s.
#[test]
fn stalled_clients_do_not_block_healthy_traffic() {
    let _s = serial();
    let server = start_server();
    let addr = server.addr();

    let mut stalled: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(b"POST /score HTTP/1.1\r\nContent-Le")
                .expect("partial write");
            c
        })
        .collect();

    // Healthy traffic while three handlers sit inside stalled reads.
    let healthy_t0 = Instant::now();
    for e in bundle().examples.iter().take(3) {
        let resp = request(addr, "POST", "/score", &score_body(std::slice::from_ref(e)))
            .expect("healthy request");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert!(
        healthy_t0.elapsed() < Duration::from_secs(5),
        "healthy requests took {:?} behind stalled clients",
        healthy_t0.elapsed()
    );

    // Every stalled connection is answered 408 once the 400ms timeout hits.
    for (i, conn) in stalled.iter_mut().enumerate() {
        let resp = cohortnet_serve::client::read_response(conn)
            .unwrap_or_else(|e| panic!("stalled conn {i} got no response: {e}"));
        assert_eq!(resp.status, 408, "stalled conn {i}: {}", resp.body);
    }
    server.shutdown();
}

/// Per-request deadlines: a request that ages in the queue behind an
/// injected-slow batch is answered `429 + Retry-After` instead of being
/// scored late, and the rejection shows up on `/metrics`.
#[test]
fn queued_request_past_deadline_gets_429_with_retry_after() {
    let _s = serial();
    // One-request batches, a 30ms queue deadline, and a 300ms injected
    // stall on the first forward pass: request B queues behind A, ages past
    // its deadline while A scores, and must be rejected, not served stale.
    let plan = ChaosPlan::new(11).site("infer.latency", When::At(vec![1]), 300);
    let guard = install(plan);
    let loaded = load_snapshot(&bundle().snapshot).expect("snapshot loads");
    let server = serve(
        loaded,
        ServerConfig {
            port: 0,
            engine: EngineConfig {
                max_batch: 1,
                max_delay_us: 0,
                threads: 1,
                queue_cap: 64,
                deadline_ms: 30,
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let body_a = score_body(std::slice::from_ref(&bundle().examples[0]));
    let body_b = score_body(std::slice::from_ref(&bundle().examples[1]));

    let slow = std::thread::spawn(move || request(addr, "POST", "/score", &body_a));
    // Let A reach the batcher (and its 300ms stall) before B enqueues.
    std::thread::sleep(Duration::from_millis(100));
    let resp = request(addr, "POST", "/score", &body_b).expect("request B");
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.header("Retry-After"), Some("1"), "{}", resp.head);
    assert!(resp.body.contains("deadline"), "{}", resp.body);

    let resp_a = slow.join().expect("thread A").expect("request A");
    assert_eq!(
        resp_a.status, 200,
        "slow-but-in-deadline A: {}",
        resp_a.body
    );

    let metrics = fetch_metrics(addr);
    let rejected = metric_value(&metrics, "cohortnet_requests_rejected_deadline_total ")
        .expect("deadline counter on /metrics");
    assert!(
        rejected >= 1.0,
        "deadline rejection not counted: {rejected}"
    );
    server.shutdown();
    drop(guard);
}

/// Queue-saturation injection: `engine.enqueue.reject` turns into a `503 +
/// Retry-After` for the plain client, and the retrying client rides over it.
#[test]
fn injected_queue_saturation_yields_retryable_503() {
    let _s = serial();
    let plan = ChaosPlan::new(5).site("engine.enqueue.reject", When::At(vec![1]), 0);
    let guard = install(plan);
    let server = start_server();
    let addr = server.addr();
    let e = &bundle().examples[0];

    // First enqueue is rejected: the plain client sees the backpressure
    // answer with its Retry-After hint...
    let resp =
        request(addr, "POST", "/score", &score_body(std::slice::from_ref(e))).expect("request");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("Retry-After"), Some("1"), "{}", resp.head);

    // ...and the retrying client turns the same schedule into a success.
    let plan = ChaosPlan::new(5).site("engine.enqueue.reject", When::At(vec![1]), 0);
    drop(guard);
    let guard = install(plan);
    let resp = cohortnet_serve::client::request_with_retry(
        addr,
        "POST",
        "/score",
        &score_body(std::slice::from_ref(e)),
        RetryPolicy {
            attempts: 3,
            base_ms: 5,
            max_ms: 20,
            seed: 5,
        },
    )
    .expect("retry client");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
    drop(guard);
}
