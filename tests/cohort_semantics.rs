//! Semantic invariants of cohort matching (Definitions 3.1–3.3, Eq. 10):
//! a patient belongs to a cohort iff the involved features' states match at
//! at least one time step.

use cohortnet::cdm::{mine_patterns, pattern_key};
use cohortnet::config::CohortNetConfig;
use cohortnet::crlm::CohortPool;
use cohortnet_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NF: usize = 6;
const T: usize = 10;

fn random_states(n_patients: usize, k: u8, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_patients * T * NF)
        .map(|_| rng.gen_range(0..=k))
        .collect()
}

fn masks() -> Vec<Vec<usize>> {
    // Deterministic masks: feature i with its two neighbours.
    (0..NF)
        .map(|i| {
            let mut m = vec![i, (i + 1) % NF, (i + 2) % NF];
            m.sort_unstable();
            m
        })
        .collect()
}

fn build_pool(states: &[u8], n_patients: usize) -> CohortPool {
    let m = masks();
    let mined = mine_patterns(states, n_patients, T, NF, &m);
    let mut cfg = CohortNetConfig::default_dims();
    cfg.bounds = vec![(0.0, 1.0); NF];
    cfg.min_frequency = 1;
    cfg.min_patients = 1;
    cfg.max_cohorts_per_feature = usize::MAX;
    let h = Matrix::from_fn(n_patients, NF * cfg.d_hidden, |r, c| {
        ((r * 7 + c) % 5) as f32
    });
    let labels: Vec<Vec<u8>> = (0..n_patients)
        .map(|i| vec![u8::from(i % 3 == 0)])
        .collect();
    CohortPool::build(mined, m, &h, &labels, &cfg)
}

/// Brute-force membership: does patient `p` match cohort pattern at any t?
fn manual_member(states: &[u8], p: usize, pattern: &[(usize, u8)]) -> bool {
    (0..T).any(|t| {
        pattern
            .iter()
            .all(|&(f, s)| states[p * T * NF + t * NF + f] == s)
    })
}

#[test]
fn bitmap_equals_brute_force_membership() {
    let n = 40;
    let states = random_states(n, 4, 9);
    let pool = build_pool(&states, n);
    for p in 0..n {
        let grid = &states[p * T * NF..(p + 1) * T * NF];
        for f in 0..NF {
            let bits = pool.bitmap(f, grid, T, NF);
            for (q, cohort) in pool.per_feature[f].iter().enumerate() {
                assert_eq!(
                    bits[q],
                    manual_member(&states, p, &cohort.pattern),
                    "patient {p}, feature {f}, cohort {q}"
                );
            }
        }
    }
}

#[test]
fn every_training_occurrence_is_a_member() {
    // Definition 3.1: the patients recorded during mining must all be
    // bitmap members of the final cohort.
    let n = 30;
    let states = random_states(n, 3, 1);
    let pool = build_pool(&states, n);
    for f in 0..NF {
        for cohort in &pool.per_feature[f] {
            assert!(cohort.n_patients > 0);
            // The cohort's frequency must be >= its patient count (a patient
            // can match at several steps).
            assert!(cohort.frequency >= cohort.n_patients);
        }
    }
}

#[test]
fn matching_steps_consistent_with_bitmap() {
    let n = 25;
    let states = random_states(n, 4, 17);
    let pool = build_pool(&states, n);
    for p in 0..n {
        let grid = &states[p * T * NF..(p + 1) * T * NF];
        for f in 0..NF {
            let bits = pool.bitmap(f, grid, T, NF);
            for q in 0..pool.per_feature[f].len() {
                let steps = pool.matching_steps(f, q, grid, T, NF);
                assert_eq!(bits[q], !steps.is_empty());
                // Each reported step really matches.
                let cohort = &pool.per_feature[f][q];
                for &t in &steps {
                    for &(pf, s) in &cohort.pattern {
                        assert_eq!(grid[t * NF + pf], s);
                    }
                }
            }
        }
    }
}

#[test]
fn total_frequency_is_conserved() {
    // Summing frequencies over all patterns of a feature must equal the
    // number of (patient, t) observations, since each observation produces
    // exactly one pattern per feature.
    let n = 20;
    let states = random_states(n, 3, 23);
    let m = masks();
    let mined = mine_patterns(&states, n, T, NF, &m);
    for per in &mined {
        let total: usize = per.values().map(|s| s.frequency).sum();
        assert_eq!(total, n * T);
    }
}

#[test]
fn pattern_keys_injective_over_observed_patterns() {
    let n = 30;
    let states = random_states(n, 7, 29);
    let m = masks();
    // For each feature, decode every observed key and re-encode: must match.
    let mined = mine_patterns(&states, n, T, NF, &m);
    for (f, per) in mined.iter().enumerate() {
        for &key in per.keys() {
            let decoded = cohortnet::cdm::decode_key(key, &m[f]);
            let mut row = vec![0u8; NF];
            for &(pf, s) in &decoded {
                row[pf] = s;
            }
            assert_eq!(pattern_key(&row, &m[f]), key);
        }
    }
}
