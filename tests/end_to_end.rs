//! Cross-crate integration test: the full CohortNet pipeline from synthetic
//! generation through training, discovery, exploitation and interpretation.

use cohortnet::config::CohortNetConfig;
use cohortnet::interpret::{build_context, explain_patient};
use cohortnet::train::{train_cohortnet, train_without_cohorts};
use cohortnet_ehr::{profiles, split::split_80_10_10, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::evaluate;

fn pipeline_cfg(ds: &cohortnet_ehr::EhrDataset, scaler: &Standardizer) -> CohortNetConfig {
    let mut cfg = CohortNetConfig::for_dataset(ds, scaler);
    cfg.epochs_pretrain = 6;
    cfg.epochs_exploit = 2;
    cfg.batch_size = 32;
    cfg.lr = 3e-3;
    cfg.k_states = 5;
    cfg.min_frequency = 4;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 4000;
    cfg
}

#[test]
fn full_pipeline_mortality() {
    let mut profile = profiles::mimic3_like(0.1);
    profile.n_patients = 1100;
    profile.time_steps = 8;
    profile.healthy_rate = 0.5;
    let ds = generate(&profile);
    let split = split_80_10_10(&ds, 3);
    let mut train_ds = ds.subset(&split.train);
    // Evaluate on val ∪ test: at this miniature scale a 10% test split is
    // too small for a stable AUC.
    let heldout: Vec<usize> = split.val.iter().chain(&split.test).copied().collect();
    let mut test_ds = ds.subset(&heldout);
    let scaler = Standardizer::fit(&train_ds);
    scaler.apply(&mut train_ds);
    scaler.apply(&mut test_ds);
    let cfg = pipeline_cfg(&train_ds, &scaler);
    let train_prep = prepare(&train_ds);
    let test_prep = prepare(&test_ds);

    let trained = train_cohortnet(&train_prep, &cfg);

    // Cohorts exist and respect the filters.
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    assert!(
        pool.total_cohorts() > 10,
        "only {} cohorts",
        pool.total_cohorts()
    );
    for c in pool.per_feature.iter().flatten() {
        assert!(c.frequency >= cfg.min_frequency);
        assert!(c.n_patients >= cfg.min_patients);
        assert!(c.pos_rate[0] >= 0.0 && c.pos_rate[0] <= 1.0);
    }

    // Predictive quality beats chance on held-out data.
    let report = evaluate(&trained.model, &trained.params, &test_prep, 64);
    assert!(report.auc_roc > 0.6, "test AUC-ROC {:.3}", report.auc_roc);
    let prevalence = test_ds.positive_rate();
    assert!(
        report.auc_pr > prevalence,
        "AUC-PR {:.3} <= prevalence {prevalence:.3}",
        report.auc_pr
    );

    // Interpretation works on a held-out patient.
    let ctx = build_context(&trained.model, &trained.params, &train_prep, &scaler);
    assert_eq!(ctx.states.n_patients, train_prep.patients.len());
    let exp = explain_patient(&trained.model, &trained.params, &test_prep, 0);
    assert!(exp.full_prob[0].is_finite());
    assert_eq!(exp.feature_scores.len(), train_ds.n_features());
}

#[test]
fn full_pipeline_multilabel_diagnosis() {
    let mut profile = profiles::eicu_like(0.1);
    profile.n_patients = 800;
    profile.time_steps = 6;
    let ds = generate(&profile);
    let split = split_80_10_10(&ds, 5);
    let mut train_ds = ds.subset(&split.train);
    let heldout: Vec<usize> = split.val.iter().chain(&split.test).copied().collect();
    let mut test_ds = ds.subset(&heldout);
    let scaler = Standardizer::fit(&train_ds);
    scaler.apply(&mut train_ds);
    scaler.apply(&mut test_ds);
    let cfg = pipeline_cfg(&train_ds, &scaler);
    let trained = train_cohortnet(&prepare(&train_ds), &cfg);

    // Multi-label: cohort label blocks have 25 rates.
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    let c = pool
        .per_feature
        .iter()
        .flatten()
        .next()
        .expect("cohorts exist");
    assert_eq!(c.pos_rate.len(), 25);

    let report = evaluate(&trained.model, &trained.params, &prepare(&test_ds), 64);
    assert!(report.auc_roc > 0.55, "macro AUC-ROC {:.3}", report.auc_roc);
}

#[test]
fn cohorts_improve_over_ablation_on_planted_data() {
    // The paper's central claim at miniature scale: the full model's
    // training-set fit with cohorts should not be worse than w/o c by any
    // meaningful margin (on the test set both fluctuate at this scale, so
    // the assertion is deliberately one-sided and loose).
    let mut profile = profiles::mimic3_like(0.1);
    profile.n_patients = 240;
    profile.time_steps = 8;
    profile.healthy_rate = 0.45;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let cfg = pipeline_cfg(&ds, &scaler);
    let prep = prepare(&ds);

    let full = train_cohortnet(&prep, &cfg);
    let woc = train_without_cohorts(&prep, &cfg);
    let r_full = evaluate(&full.model, &full.params, &prep, 64);
    let r_woc = evaluate(&woc.model, &woc.params, &prep, 64);
    assert!(
        r_full.auc_pr > r_woc.auc_pr - 0.05,
        "cohorts degraded fit: {:.3} vs {:.3}",
        r_full.auc_pr,
        r_woc.auc_pr
    );
}
