//! Integration tests for the §Discussions extensions: adaptive per-feature
//! state budgets, attention-threshold masks, and iterative cohort updates —
//! exercised through the full pipeline, not just their units.

use cohortnet::cdm::mine_patterns;
use cohortnet::config::CohortNetConfig;
use cohortnet::discover::batch_states;
use cohortnet::train::{train_cohortnet, train_without_cohorts};
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::{make_batch, prepare, Prepared};
use cohortnet_models::trainer::evaluate;
use cohortnet_tensor::{Matrix, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n: usize, t: usize) -> (CohortNetConfig, Prepared) {
    let mut profile = profiles::mimic3_like(0.1);
    profile.n_patients = n;
    profile.time_steps = t;
    profile.healthy_rate = 0.5;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 4;
    cfg.epochs_exploit = 2;
    cfg.lr = 3e-3;
    cfg.k_states = 5;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 3000;
    (cfg, prepare(&ds))
}

#[test]
fn adaptive_k_pipeline_runs_and_reduces_sparse_state_budgets() {
    let (mut cfg, prep) = setup(300, 6);
    cfg.adaptive_k = true;
    let trained = train_cohortnet(&prep, &cfg);
    let d = trained.model.discovery.as_ref().unwrap();
    // Sparse features (e.g. PIP, missing in ~45% of patients and rarely
    // charted) must get fewer states than dense vitals.
    let ks: Vec<usize> = d
        .states
        .models
        .iter()
        .map(|m| m.as_ref().map_or(0, |c| c.k))
        .collect();
    let max_k = ks.iter().copied().max().unwrap();
    let min_k = ks.iter().copied().filter(|&k| k > 0).min().unwrap();
    assert_eq!(max_k, cfg.k_states, "densest feature gets the ceiling");
    assert!(min_k < max_k, "adaptive budgets all equal: {ks:?}");
    // The pipeline still predicts.
    let r = evaluate(&trained.model, &trained.params, &prep, 64);
    assert!(r.auc_roc > 0.55, "train AUC {:.3}", r.auc_roc);
}

#[test]
fn threshold_masks_pipeline_produces_variable_width_patterns() {
    let (mut cfg, prep) = setup(200, 6);
    cfg.mask_threshold = Some(1.05);
    cfg.n_top = 3; // cap
    let trained = train_cohortnet(&prep, &cfg);
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    let widths: Vec<usize> = pool.masks.iter().map(Vec::len).collect();
    assert!(
        widths.iter().all(|&w| (2..=4).contains(&w)),
        "widths out of range: {widths:?}"
    );
    // Every cohort's pattern matches its mask width.
    for (f, cohorts) in pool.per_feature.iter().enumerate() {
        for c in cohorts {
            assert_eq!(c.pattern.len(), pool.masks[f].len());
        }
    }
}

#[test]
fn incremental_update_approximates_full_rebuild() {
    let (cfg, prep) = setup(260, 6);
    // Pre-train a backbone, discover on the first half.
    let trained = train_without_cohorts(&prep, &cfg);
    let half = prep.patients.len() / 2;
    let first = Prepared {
        n_features: prep.n_features,
        time_steps: prep.time_steps,
        n_labels: prep.n_labels,
        patients: prep.patients[..half].to_vec(),
    };
    let second = Prepared {
        n_features: prep.n_features,
        time_steps: prep.time_steps,
        n_labels: prep.n_labels,
        patients: prep.patients[half..].to_vec(),
    };
    let mut rng = StdRng::seed_from_u64(1);
    let d_half =
        cohortnet::discover::discover(&trained.model.mflm, &trained.params, &first, &cfg, &mut rng);

    // Helper: states + channel representations of a prepared set under the
    // half's fitted state models.
    let states_and_h = |pp: &Prepared| -> (Vec<u8>, Matrix) {
        let nf = pp.n_features;
        let t_steps = pp.time_steps;
        let n = pp.patients.len();
        let mut states = vec![0u8; n * t_steps * nf];
        let mut hh = Matrix::zeros(n, nf * cfg.d_hidden);
        for chunk in (0..n).collect::<Vec<_>>().chunks(32) {
            let batch = make_batch(pp, chunk);
            let mut tape = Tape::new();
            let trace = trained
                .model
                .mflm
                .forward(&mut tape, &trained.params, &batch, false);
            let bs = batch_states(&tape, &trace, &batch, &d_half.states);
            for (r, &p) in chunk.iter().enumerate() {
                states[p * t_steps * nf..(p + 1) * t_steps * nf]
                    .copy_from_slice(&bs[r * t_steps * nf..(r + 1) * t_steps * nf]);
                for (f, &h) in trace.h_final.iter().enumerate() {
                    hh.row_mut(p)[f * cfg.d_hidden..(f + 1) * cfg.d_hidden]
                        .copy_from_slice(tape.value(h).row(r));
                }
            }
        }
        (states, hh)
    };

    let nf = prep.n_features;
    let t_steps = prep.time_steps;

    // Reference: a rebuild over ALL patients under the SAME states/masks —
    // this isolates the pool-update strategy from state/mask drift.
    let (states_all, h_all) = states_and_h(&prep);
    let mined_all = mine_patterns(
        &states_all,
        prep.patients.len(),
        t_steps,
        nf,
        &d_half.pool.masks,
    );
    let labels_all: Vec<Vec<u8>> = prep.patients.iter().map(|p| p.labels_u8.clone()).collect();
    let rebuild = cohortnet::crlm::CohortPool::build(
        mined_all,
        d_half.pool.masks.clone(),
        &h_all,
        &labels_all,
        &cfg,
    );

    // Incremental fold of the second half into the half-pool.
    let mut pool = d_half.pool.clone();
    let (states2, h2) = states_and_h(&second);
    let mined2 = mine_patterns(&states2, second.patients.len(), t_steps, nf, &pool.masks);
    let labels2: Vec<Vec<u8>> = second
        .patients
        .iter()
        .map(|p| p.labels_u8.clone())
        .collect();
    let admitted = pool.update_with(mined2, &h2, &labels2, &cfg);
    assert!(admitted > 0, "second half brought no new patterns");
    let d_full = rebuild;

    // The incremental pool must cover the well-supported cohorts of the
    // full rebuild. It cannot cover everything: a borderline pattern whose
    // occurrences straddle the halves passes the filters only when counted
    // jointly — that accuracy/cost trade is exactly what this strategy
    // accepts. So the coverage check targets cohorts with comfortable
    // evidence (≥ 3x the filter thresholds), which must appear in at least
    // one half.
    let mut covered = 0usize;
    let mut total = 0usize;
    for f in 0..nf {
        for c in &d_full.per_feature[f] {
            if c.frequency < 3 * cfg.min_frequency || c.n_patients < 3 * cfg.min_patients {
                continue;
            }
            total += 1;
            if pool.lookup(f, c.key).is_some() {
                covered += 1;
            }
        }
    }
    assert!(total > 0, "no well-supported cohorts to check");
    let coverage = covered as f64 / total as f64;
    assert!(
        coverage > 0.7,
        "incremental pool covers only {coverage:.2} of {total}"
    );
}
