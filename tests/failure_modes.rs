//! Failure-injection tests: the workspace's error surfaces must fail loudly
//! and precisely, not corrupt state or mis-train silently. Snapshot
//! corruption — byte flips and the `snapshot.corrupt` chaos site — must
//! surface as typed [`SnapshotError`]s, never as a panic or abort.

use cohortnet::snapshot::{load_snapshot, save_snapshot, SnapshotError};
use cohortnet_chaos::{ChaosPlan, When};
use cohortnet_clustering::{kmeans_fit, KMeansConfig};
use cohortnet_ehr::io::{dataset_from_csv, CsvError};
use cohortnet_ehr::record::{EhrDataset, PatientRecord, Task};
use cohortnet_metrics::{macro_report, pr_auc, roc_auc};
use cohortnet_tensor::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------- tensor

#[test]
#[should_panic(expected = "matmul shape mismatch")]
fn matmul_shape_mismatch_panics() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(2, 3);
    let _ = a.matmul(&b);
}

#[test]
#[should_panic(expected = "zip shape mismatch")]
fn elementwise_shape_mismatch_panics() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(3, 2);
    let _ = a.add(&b);
}

#[test]
#[should_panic(expected = "bias must be a row vector")]
fn tape_bias_shape_checked() {
    let mut t = cohortnet_tensor::Tape::new();
    let a = t.constant(Matrix::zeros(2, 3));
    let b = t.constant(Matrix::zeros(2, 3));
    let _ = t.add_row_broadcast(a, b);
}

// ------------------------------------------------------------- clustering

#[test]
#[should_panic(expected = "empty")]
fn kmeans_empty_input_panics() {
    let mut rng = StdRng::seed_from_u64(0);
    let _ = kmeans_fit(&[], 3, KMeansConfig::default(), &mut rng);
}

#[test]
#[should_panic(expected = "not divisible")]
fn kmeans_ragged_input_panics() {
    let mut rng = StdRng::seed_from_u64(0);
    let _ = kmeans_fit(&[1.0, 2.0, 3.0], 2, KMeansConfig::default(), &mut rng);
}

// ---------------------------------------------------------------- metrics

#[test]
#[should_panic(expected = "length mismatch")]
fn metric_length_mismatch_panics() {
    let _ = roc_auc(&[0.1, 0.2], &[1]);
}

#[test]
fn metrics_tolerate_nan_free_degenerate_inputs() {
    // Degenerate but valid inputs return well-defined fallbacks.
    assert_eq!(roc_auc(&[], &[]), 0.5);
    assert_eq!(pr_auc(&[], &[]), 0.0);
    let r = macro_report(&[0.5, 0.5], &[0, 0], 2);
    assert_eq!(r.auc_roc, 0.5);
}

// -------------------------------------------------------------------- ehr

#[test]
fn dataset_validation_rejects_label_width_drift() {
    let ds = EhrDataset {
        name: "bad".into(),
        feature_indices: vec![0],
        time_steps: 2,
        task: Task::Diagnosis { n_labels: 3 },
        patients: vec![PatientRecord {
            id: 0,
            values: vec![vec![1.0, 2.0]],
            present: vec![true],
            labels: vec![1], // should be 3 wide
            archetypes: vec![],
            severity: 0.0,
        }],
    };
    let err = ds.validate().unwrap_err();
    assert!(err.contains("labels"), "unexpected error: {err}");
}

#[test]
fn csv_error_messages_carry_context() {
    let err = dataset_from_csv(
        "1,abc,RR,5\n",
        "1,0\n",
        &["RR"],
        4,
        4.0,
        Task::Mortality,
        "x",
    )
    .unwrap_err();
    assert_eq!(err, CsvError::BadLine(1, "bad timestamp".into()));
    assert!(err.to_string().contains("line 1"));
}

// ------------------------------------------------------------------- core

#[test]
#[should_panic(expected = "config has no feature bounds")]
fn mflm_requires_bounds() {
    let cfg = cohortnet::config::CohortNetConfig::default_dims(); // empty bounds
    let mut ps = cohortnet_tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let _ = cohortnet::mflm::Mflm::new(&mut ps, &mut rng, &cfg);
}

// --------------------------------------------------------------- snapshot

/// The chaos plan is process-global and `snapshot.corrupt` keys on call
/// order, so the snapshot tests serialise on this lock.
fn snapshot_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A quick untrained snapshot (no discovery pass), enough to exercise the
/// load-time integrity checks.
fn untrained_snapshot() -> String {
    let mut c = cohortnet_ehr::profiles::mimic3_like(0.05);
    c.n_patients = 10;
    c.time_steps = 3;
    let mut ds = cohortnet_ehr::synth::generate(&c);
    let scaler = cohortnet_ehr::standardize::Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let cfg = cohortnet::config::CohortNetConfig::for_dataset(&ds, &scaler);
    let mut ps = cohortnet_tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model = cohortnet::model::CohortNetModel::new(&mut ps, &mut rng, &cfg);
    save_snapshot(&model, &ps, &scaler, 3)
}

#[test]
fn corrupted_snapshot_load_returns_typed_error_not_abort() {
    let _s = snapshot_serial();
    let text = untrained_snapshot();
    // Flip single bytes at positions spread across the artifact (past the
    // version header, which has its own rejection path): every corruption
    // must come back as a typed SnapshotError, never a panic.
    let body_start = text.find('\n').expect("header line") + 1;
    let len = text.len();
    for frac in [0usize, 1, 2, 5, 9] {
        let idx = body_start + (len - body_start - 1) * frac / 9;
        let mut bytes = text.clone().into_bytes();
        bytes[idx] = (bytes[idx] ^ 0x01) | 0x20;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        if corrupt == text {
            continue;
        }
        let Err(err) = load_snapshot(&corrupt) else {
            panic!("corruption at byte {idx} must be rejected");
        };
        // The error is typed and printable — this is what the CLI reports
        // as `snapshot rejected: ...` instead of aborting.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn chaos_snapshot_corruption_site_degrades_to_typed_error() {
    let _s = snapshot_serial();
    let text = untrained_snapshot();
    let guard = cohortnet_chaos::install(ChaosPlan::new(3).site(
        "snapshot.corrupt",
        When::At(vec![1]),
        257,
    ));
    // First load hits the injected corruption: a typed checksum failure.
    match load_snapshot(&text) {
        Err(SnapshotError::Checksum { .. }) => {}
        Err(other) => panic!("expected a checksum error, got {other}"),
        Ok(_) => panic!("injected corruption must be rejected"),
    }
    // The site fires only on call 1: the next load of the same text is
    // clean, proving the fault was injected, not latent.
    assert!(load_snapshot(&text).is_ok());
    drop(guard);
    assert!(load_snapshot(&text).is_ok());
}

#[test]
#[should_panic(expected = "run discovery before interpretation")]
fn interpretation_requires_discovery() {
    let mut cfg = cohortnet::config::CohortNetConfig::default_dims();
    cfg.bounds = vec![(0.0, 1.0); 2];
    let mut ps = cohortnet_tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = cohortnet::model::CohortNetModel::new(&mut ps, &mut rng, &cfg);
    let prep = cohortnet_models::data::Prepared {
        n_features: 2,
        time_steps: 2,
        n_labels: 1,
        patients: vec![],
    };
    let _ = cohortnet::interpret::compute_states(&model, &ps, &prep);
}
