//! Failure-injection tests: the workspace's error surfaces must fail loudly
//! and precisely, not corrupt state or mis-train silently.

use cohortnet_clustering::{kmeans_fit, KMeansConfig};
use cohortnet_ehr::io::{dataset_from_csv, CsvError};
use cohortnet_ehr::record::{EhrDataset, PatientRecord, Task};
use cohortnet_metrics::{macro_report, pr_auc, roc_auc};
use cohortnet_tensor::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------- tensor

#[test]
#[should_panic(expected = "matmul shape mismatch")]
fn matmul_shape_mismatch_panics() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(2, 3);
    let _ = a.matmul(&b);
}

#[test]
#[should_panic(expected = "zip shape mismatch")]
fn elementwise_shape_mismatch_panics() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(3, 2);
    let _ = a.add(&b);
}

#[test]
#[should_panic(expected = "bias must be a row vector")]
fn tape_bias_shape_checked() {
    let mut t = cohortnet_tensor::Tape::new();
    let a = t.constant(Matrix::zeros(2, 3));
    let b = t.constant(Matrix::zeros(2, 3));
    let _ = t.add_row_broadcast(a, b);
}

// ------------------------------------------------------------- clustering

#[test]
#[should_panic(expected = "empty")]
fn kmeans_empty_input_panics() {
    let mut rng = StdRng::seed_from_u64(0);
    let _ = kmeans_fit(&[], 3, KMeansConfig::default(), &mut rng);
}

#[test]
#[should_panic(expected = "not divisible")]
fn kmeans_ragged_input_panics() {
    let mut rng = StdRng::seed_from_u64(0);
    let _ = kmeans_fit(&[1.0, 2.0, 3.0], 2, KMeansConfig::default(), &mut rng);
}

// ---------------------------------------------------------------- metrics

#[test]
#[should_panic(expected = "length mismatch")]
fn metric_length_mismatch_panics() {
    let _ = roc_auc(&[0.1, 0.2], &[1]);
}

#[test]
fn metrics_tolerate_nan_free_degenerate_inputs() {
    // Degenerate but valid inputs return well-defined fallbacks.
    assert_eq!(roc_auc(&[], &[]), 0.5);
    assert_eq!(pr_auc(&[], &[]), 0.0);
    let r = macro_report(&[0.5, 0.5], &[0, 0], 2);
    assert_eq!(r.auc_roc, 0.5);
}

// -------------------------------------------------------------------- ehr

#[test]
fn dataset_validation_rejects_label_width_drift() {
    let ds = EhrDataset {
        name: "bad".into(),
        feature_indices: vec![0],
        time_steps: 2,
        task: Task::Diagnosis { n_labels: 3 },
        patients: vec![PatientRecord {
            id: 0,
            values: vec![vec![1.0, 2.0]],
            present: vec![true],
            labels: vec![1], // should be 3 wide
            archetypes: vec![],
            severity: 0.0,
        }],
    };
    let err = ds.validate().unwrap_err();
    assert!(err.contains("labels"), "unexpected error: {err}");
}

#[test]
fn csv_error_messages_carry_context() {
    let err = dataset_from_csv(
        "1,abc,RR,5\n",
        "1,0\n",
        &["RR"],
        4,
        4.0,
        Task::Mortality,
        "x",
    )
    .unwrap_err();
    assert_eq!(err, CsvError::BadLine(1, "bad timestamp".into()));
    assert!(err.to_string().contains("line 1"));
}

// ------------------------------------------------------------------- core

#[test]
#[should_panic(expected = "config has no feature bounds")]
fn mflm_requires_bounds() {
    let cfg = cohortnet::config::CohortNetConfig::default_dims(); // empty bounds
    let mut ps = cohortnet_tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let _ = cohortnet::mflm::Mflm::new(&mut ps, &mut rng, &cfg);
}

#[test]
#[should_panic(expected = "run discovery before interpretation")]
fn interpretation_requires_discovery() {
    let mut cfg = cohortnet::config::CohortNetConfig::default_dims();
    cfg.bounds = vec![(0.0, 1.0); 2];
    let mut ps = cohortnet_tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = cohortnet::model::CohortNetModel::new(&mut ps, &mut rng, &cfg);
    let prep = cohortnet_models::data::Prepared {
        n_features: 2,
        time_steps: 2,
        n_labels: 1,
        patients: vec![],
    };
    let _ = cohortnet::interpret::compute_states(&model, &ps, &prep);
}
