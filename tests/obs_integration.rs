//! Cross-crate observability contracts:
//!
//! * the metrics registry is exact under concurrent hammering from the
//!   workspace's own scheduler;
//! * span nesting is tracked per thread with sane timing windows;
//! * tracing observes the pipeline without perturbing it — discovery and
//!   training outputs are bit-identical with collection off, on, and
//!   exporting to a file, at every thread count.

use cohortnet::config::CohortNetConfig;
use cohortnet::discover::discover;
use cohortnet::mflm::Mflm;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::{prepare, Prepared};
use cohortnet_obs::metrics::Registry;
use cohortnet_obs::trace;
use cohortnet_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serialises tests that flip the process-wide trace collector.
static OBS_GLOBAL: Mutex<()> = Mutex::new(());

#[test]
fn registry_is_exact_under_concurrent_hammering() {
    let reg = Registry::new();
    let workers = 8usize;
    let per_worker = 5_000u64;
    // Each task re-registers the same families (get-or-create) and hammers
    // them; the final values must be exact, not approximate.
    let sums = cohortnet_parallel::par_indices(4, workers, |w| {
        let counter = reg.counter("it_hits_total", "Hammered hits.");
        let gauge = reg.gauge("it_level", "Hammered gauge.");
        let hist = reg.histogram("it_values", "Hammered values.", &[10, 100, 1_000]);
        let mut local = 0u64;
        for i in 0..per_worker {
            counter.inc();
            gauge.add(1);
            gauge.add(-1);
            let v = (w as u64 * per_worker + i) % 2_000;
            hist.observe(v);
            local += v;
        }
        local
    });
    let want_sum: u64 = sums.iter().sum();
    let counter = reg.counter("it_hits_total", "Hammered hits.");
    let gauge = reg.gauge("it_level", "Hammered gauge.");
    let hist = reg.histogram("it_values", "Hammered values.", &[10, 100, 1_000]);
    assert_eq!(counter.get(), workers as u64 * per_worker);
    assert_eq!(gauge.get(), 0);
    assert_eq!(hist.count(), workers as u64 * per_worker);
    assert_eq!(hist.sum(), want_sum);
    let text = reg.render();
    assert!(
        text.contains(&format!("it_hits_total {}", workers as u64 * per_worker)),
        "{text}"
    );
}

#[test]
fn span_nesting_is_tracked_per_thread_with_sane_windows() {
    let _guard = OBS_GLOBAL.lock().expect("obs test lock poisoned");
    trace::clear();
    trace::enable();
    cohortnet_parallel::par_indices(4, 6, |i| {
        let mut outer = cohortnet_obs::span::span("it.outer");
        outer.arg("task", i);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _inner = cohortnet_obs::span::span("it.inner");
    });
    trace::disable();
    let events = trace::snapshot();
    trace::clear();

    let inners: Vec<_> = events.iter().filter(|e| e.name == "it.inner").collect();
    let outers: Vec<_> = events.iter().filter(|e| e.name == "it.outer").collect();
    assert_eq!(inners.len(), 6, "{events:?}");
    assert_eq!(outers.len(), 6, "{events:?}");
    for inner in &inners {
        let parent = events
            .iter()
            .find(|e| e.id == inner.parent)
            .unwrap_or_else(|| panic!("inner span {} has no recorded parent", inner.id));
        assert_eq!(parent.name, "it.outer");
        // Parent and child live on the same thread, and the child's window
        // sits inside the parent's.
        assert_eq!(parent.tid, inner.tid);
        assert!(parent.start_us <= inner.start_us);
        assert!(inner.start_us + inner.dur_us <= parent.start_us + parent.dur_us);
        // The outer span slept ≥1ms before opening the inner one.
        assert!(parent.dur_us >= 1_000, "parent dur {}us", parent.dur_us);
    }
    // Each outer is itself nested under a scheduler task span.
    for outer in &outers {
        let parent = events
            .iter()
            .find(|e| e.id == outer.parent)
            .unwrap_or_else(|| panic!("outer span {} has no recorded parent", outer.id));
        assert_eq!(parent.name, "par.task");
    }
}

fn tiny_dataset() -> (CohortNetConfig, Prepared) {
    let mut c = profiles::mimic3_like(0.05);
    c.n_patients = 80;
    c.time_steps = 5;
    c.healthy_rate = 0.5;
    let mut ds = generate(&c);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.k_states = 4;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 1500;
    cfg.epochs_pretrain = 2;
    cfg.epochs_exploit = 1;
    cfg.batch_size = 32;
    (cfg, prepare(&ds))
}

/// Fingerprint of a discovery result: every cohort representation, bit-wise.
fn discovery_bits(cfg: &CohortNetConfig, prep: &Prepared) -> Vec<u32> {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(21);
    let mflm = Mflm::new(&mut ps, &mut rng, cfg);
    let d = discover(&mflm, &ps, prep, cfg, &mut StdRng::seed_from_u64(5));
    d.pool
        .per_feature
        .iter()
        .flatten()
        .flat_map(|c| c.repr.iter().map(|v| v.to_bits()))
        .collect()
}

/// Fingerprint of a short training run: loss curve + final parameters.
fn training_bits(cfg: &CohortNetConfig, prep: &Prepared) -> (Vec<u32>, Vec<u32>) {
    let trained = train_cohortnet(prep, cfg);
    let losses = trained
        .timing
        .step1
        .epoch_losses
        .iter()
        .chain(&trained.timing.step4.epoch_losses)
        .map(|l| l.to_bits())
        .collect();
    let params = trained
        .params
        .entries()
        .flat_map(|e| e.value.as_slice().iter().map(|v| v.to_bits()))
        .collect();
    (losses, params)
}

#[test]
fn tracing_never_perturbs_discovery_or_training() {
    let _guard = OBS_GLOBAL.lock().expect("obs test lock poisoned");
    trace::disable();
    trace::clear();
    trace::set_output(None);
    let (mut cfg, prep) = tiny_dataset();

    let trace_path = std::env::temp_dir().join("cohortnet-obs-it-trace.json");
    let _ = std::fs::remove_file(&trace_path);

    for n_threads in [1usize, 4] {
        cfg.n_threads = n_threads;
        // Reference: tracing fully off.
        let ref_disc = discovery_bits(&cfg, &prep);
        let (ref_losses, ref_params) = training_bits(&cfg, &prep);
        assert!(!ref_disc.is_empty());
        assert!(!ref_params.is_empty());

        // Collection on, in memory.
        trace::enable();
        let on_disc = discovery_bits(&cfg, &prep);
        let (on_losses, on_params) = training_bits(&cfg, &prep);
        trace::disable();

        // Collection on, exporting to a file (the COHORTNET_TRACE mode).
        trace::set_output(Some(trace_path.to_string_lossy().into_owned()));
        trace::enable();
        let file_disc = discovery_bits(&cfg, &prep);
        let (file_losses, file_params) = training_bits(&cfg, &prep);
        trace::disable();
        trace::set_output(None);

        assert_eq!(
            ref_disc, on_disc,
            "tracing changed discovery at {n_threads} threads"
        );
        assert_eq!(
            ref_disc, file_disc,
            "trace export changed discovery at {n_threads} threads"
        );
        assert_eq!(
            ref_losses, on_losses,
            "tracing changed losses at {n_threads} threads"
        );
        assert_eq!(
            ref_losses, file_losses,
            "trace export changed losses at {n_threads} threads"
        );
        assert_eq!(
            ref_params, on_params,
            "tracing changed params at {n_threads} threads"
        );
        assert_eq!(
            ref_params, file_params,
            "trace export changed params at {n_threads} threads"
        );
    }

    // The pipeline recorded spans for all four paper modules plus the
    // discovery sub-stages, and the exported file contains them.
    let events = trace::snapshot();
    for name in [
        "train.pipeline",
        "mflm.pretrain",
        "discover",
        "cdm.collect",
        "cdm.fit",
        "cdm.assign",
        "cdm.mine",
        "crlm.represent",
        "crlm.retrieve",
        "cdm.fit.feature",
        "train.epoch",
        "cem.exploit",
    ] {
        assert!(
            events.iter().any(|e| e.name == name),
            "no {name} span recorded"
        );
    }
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"name\":\"discover\""));
    trace::clear();
    let _ = std::fs::remove_file(&trace_path);
}
