//! Persistence integration: a trained CohortNet survives a full
//! save/reload cycle (parameters + cohort pool) with bit-identical
//! predictions, datasets survive the CSV round trip, and a streaming
//! server cold-restarted from the same snapshot re-scores replayed
//! sessions byte-identically (sessions themselves are never persisted).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

use cohortnet::config::CohortNetConfig;
use cohortnet::export::{pool_from_str, pool_to_string};
use cohortnet::model::CohortNetModel;
use cohortnet::snapshot::load_snapshot;
use cohortnet::stream::StreamEvent;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::io::{dataset_from_csv, dataset_to_csv};
use cohortnet_ehr::record::Task;
use cohortnet_ehr::{generate_event_streams, EventStreamConfig};
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::predict_probs;
use cohortnet_serve::{serve_stream, EngineConfig, Server, ServerConfig, StreamOptions};
use cohortnet_tensor::checkpoint::{load_params, save_params};
use cohortnet_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn model_reload_is_bit_identical() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 120;
    profile.time_steps = 6;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 2;
    cfg.epochs_exploit = 1;
    cfg.k_states = 4;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 1500;
    let prep = prepare(&ds);
    let trained = train_cohortnet(&prep, &cfg);

    // Save.
    let params_txt = save_params(&trained.params);
    let pool_txt = pool_to_string(&trained.model.discovery.as_ref().unwrap().pool);

    // Reload into a fresh architecture.
    let mut ps2 = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model2 = CohortNetModel::new(&mut ps2, &mut rng, &cfg);
    load_params(&mut ps2, &params_txt).unwrap();
    let mut discovery2 = trained.model.discovery.clone().unwrap();
    discovery2.pool = pool_from_str(&pool_txt).unwrap();
    model2.discovery = Some(discovery2);

    let original = predict_probs(&trained.model, &trained.params, &prep, 32);
    let reloaded = predict_probs(&model2, &ps2, &prep, 32);
    for (a, b) in original.iter().zip(&reloaded) {
        assert!((a - b).abs() < 1e-6, "prediction drift: {a} vs {b}");
    }
}

#[test]
fn dataset_csv_round_trip_trains_identically() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 60;
    profile.time_steps = 5;
    let ds = generate(&profile);
    let (events, labels) = dataset_to_csv(&ds, profile.horizon_hours);
    let codes: Vec<&str> = profile.feature_codes.clone();
    let ds2 = dataset_from_csv(
        &events,
        &labels,
        &codes,
        profile.time_steps,
        profile.horizon_hours,
        Task::Mortality,
        "roundtrip",
    )
    .unwrap();
    assert_eq!(ds2.n_patients(), ds.n_patients());
    ds2.validate().unwrap();
    // Present series and labels identical; the round trip only loses raw
    // event timing (values are re-exported at bin centres).
    for (a, b) in ds.patients.iter().zip(&ds2.patients) {
        assert_eq!(a.labels, b.labels);
        for f in 0..ds.n_features() {
            if a.present[f] {
                assert!(b.present[f], "patient {} feature {f} lost", a.id);
                assert_eq!(a.values[f], b.values[f]);
            }
        }
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn start_stream_server(snapshot: &str) -> Server {
    serve_stream(
        load_snapshot(snapshot).expect("snapshot loads"),
        ServerConfig {
            port: 0,
            engine: EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            ..ServerConfig::default()
        },
        StreamOptions::default(),
    )
    .expect("stream server starts")
}

/// Streaming sessions are ephemeral — a snapshot taken while sessions are
/// live contains no session state, so a cold restart from the same
/// snapshot starts with zero sessions; replaying an admission's event
/// history onto the restarted server renders **byte-identical** score
/// responses. This is the persistence contract for online scoring: the
/// event log, not the server, is the durable record.
#[test]
fn stream_server_cold_restart_rescoring_is_byte_identical() {
    let snapshot = cohortnet_serve::demo::demo_bundle().snapshot;
    let events: Vec<StreamEvent> = generate_event_streams(&EventStreamConfig {
        n_admissions: 1,
        n_features: 20,
        events_per_feature: 3,
        seed: 0xc01d,
        ..EventStreamConfig::default()
    })[0]
        .events
        .iter()
        .map(|e| StreamEvent {
            feature: e.feature,
            ts: e.ts,
            value: e.value,
        })
        .collect();
    let body = {
        let evs: Vec<String> = events
            .iter()
            .map(|e| format!("{{\"f\":{},\"t\":{},\"v\":{}}}", e.feature, e.ts, e.value))
            .collect();
        format!(
            "{{\"session\":\"adm-0\",\"events\":[{}],\"score\":false}}",
            evs.join(",")
        )
    };

    // First life: ingest mid-stream, score, then die (sessions vanish).
    let server = start_stream_server(&snapshot);
    let addr = server.addr();
    let (status, resp) = http(addr, "POST", "/ingest", &body);
    assert_eq!(status, 200, "{resp}");
    let (status, before) = http(addr, "POST", "/sessions/adm-0/score", "");
    assert_eq!(status, 200, "{before}");
    server.shutdown();

    // Second life from the very same snapshot text: no sessions survive…
    let server = start_stream_server(&snapshot);
    let addr = server.addr();
    let (status, _) = http(addr, "POST", "/sessions/adm-0/score", "");
    assert_eq!(status, 404, "sessions must not be persisted");
    // …and replaying the event log reproduces the exact bytes.
    let (status, _) = http(addr, "POST", "/ingest", &body);
    assert_eq!(status, 200);
    let (status, after) = http(addr, "POST", "/sessions/adm-0/score", "");
    assert_eq!(status, 200);
    assert_eq!(before, after, "cold-restart re-score drifted");
}

#[test]
fn checkpoint_rejects_architecture_drift() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 40;
    profile.time_steps = 4;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let _ = CohortNetModel::new(&mut ps, &mut rng, &cfg);
    let text = save_params(&ps);

    // A model with a different hidden width must refuse the checkpoint.
    let mut cfg2 = cfg.clone();
    cfg2.d_hidden += 4;
    let mut ps2 = ParamStore::new();
    let _ = CohortNetModel::new(&mut ps2, &mut StdRng::seed_from_u64(0), &cfg2);
    assert!(load_params(&mut ps2, &text).is_err());
}
