//! Persistence integration: a trained CohortNet survives a full
//! save/reload cycle (parameters + cohort pool) with bit-identical
//! predictions, and datasets survive the CSV round trip.

use cohortnet::config::CohortNetConfig;
use cohortnet::export::{pool_from_str, pool_to_string};
use cohortnet::model::CohortNetModel;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::io::{dataset_from_csv, dataset_to_csv};
use cohortnet_ehr::record::Task;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;
use cohortnet_models::trainer::predict_probs;
use cohortnet_tensor::checkpoint::{load_params, save_params};
use cohortnet_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn model_reload_is_bit_identical() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 120;
    profile.time_steps = 6;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 2;
    cfg.epochs_exploit = 1;
    cfg.k_states = 4;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 1500;
    let prep = prepare(&ds);
    let trained = train_cohortnet(&prep, &cfg);

    // Save.
    let params_txt = save_params(&trained.params);
    let pool_txt = pool_to_string(&trained.model.discovery.as_ref().unwrap().pool);

    // Reload into a fresh architecture.
    let mut ps2 = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model2 = CohortNetModel::new(&mut ps2, &mut rng, &cfg);
    load_params(&mut ps2, &params_txt).unwrap();
    let mut discovery2 = trained.model.discovery.clone().unwrap();
    discovery2.pool = pool_from_str(&pool_txt).unwrap();
    model2.discovery = Some(discovery2);

    let original = predict_probs(&trained.model, &trained.params, &prep, 32);
    let reloaded = predict_probs(&model2, &ps2, &prep, 32);
    for (a, b) in original.iter().zip(&reloaded) {
        assert!((a - b).abs() < 1e-6, "prediction drift: {a} vs {b}");
    }
}

#[test]
fn dataset_csv_round_trip_trains_identically() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 60;
    profile.time_steps = 5;
    let ds = generate(&profile);
    let (events, labels) = dataset_to_csv(&ds, profile.horizon_hours);
    let codes: Vec<&str> = profile.feature_codes.clone();
    let ds2 = dataset_from_csv(
        &events,
        &labels,
        &codes,
        profile.time_steps,
        profile.horizon_hours,
        Task::Mortality,
        "roundtrip",
    )
    .unwrap();
    assert_eq!(ds2.n_patients(), ds.n_patients());
    ds2.validate().unwrap();
    // Present series and labels identical; the round trip only loses raw
    // event timing (values are re-exported at bin centres).
    for (a, b) in ds.patients.iter().zip(&ds2.patients) {
        assert_eq!(a.labels, b.labels);
        for f in 0..ds.n_features() {
            if a.present[f] {
                assert!(b.present[f], "patient {} feature {f} lost", a.id);
                assert_eq!(a.values[f], b.values[f]);
            }
        }
    }
}

#[test]
fn checkpoint_rejects_architecture_drift() {
    let mut profile = profiles::mimic3_like(0.05);
    profile.n_patients = 40;
    profile.time_steps = 4;
    let mut ds = generate(&profile);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let _ = CohortNetModel::new(&mut ps, &mut rng, &cfg);
    let text = save_params(&ps);

    // A model with a different hidden width must refuse the checkpoint.
    let mut cfg2 = cfg.clone();
    cfg2.d_hidden += 4;
    let mut ps2 = ParamStore::new();
    let _ = CohortNetModel::new(&mut ps2, &mut StdRng::seed_from_u64(0), &cfg2);
    assert!(load_params(&mut ps2, &text).is_err());
}
