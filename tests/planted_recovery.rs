//! Ground-truth validation: the synthetic generator plants physiological
//! archetypes, and a trained CohortNet should (a) surface high-risk cohorts
//! whose members are enriched in sick patients and (b) separate the planted
//! conditions' feature shifts into distinct states — the checks no
//! real-world evaluation can run.

use cohortnet::config::CohortNetConfig;
use cohortnet::interpret::build_context;
use cohortnet::train::train_cohortnet;
use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
use cohortnet_models::data::prepare;

fn trained_setup() -> (
    cohortnet::train::TrainedCohortNet,
    cohortnet_models::data::Prepared,
    Standardizer,
    cohortnet_ehr::EhrDataset, // raw (unstandardised)
    cohortnet_ehr::EhrDataset, // standardised
) {
    let mut profile = profiles::mimic3_like(0.1);
    profile.n_patients = 500;
    profile.time_steps = 10;
    profile.healthy_rate = 0.5;
    let raw = generate(&profile);
    let mut ds = raw.clone();
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.epochs_pretrain = 6;
    cfg.epochs_exploit = 4;
    cfg.lr = 3e-3;
    cfg.k_states = 5;
    cfg.min_frequency = 6;
    cfg.min_patients = 3;
    cfg.state_fit_samples = 6000;
    let prep = prepare(&ds);
    (train_cohortnet(&prep, &cfg), prep, scaler, raw, ds)
}

#[test]
fn discovers_risk_enriched_cohorts() {
    let (trained, _prep, _scaler, raw, _ds) = trained_setup();
    let pool = &trained.model.discovery.as_ref().unwrap().pool;
    let background = raw.positive_rate() as f32;

    // Some cohort must concentrate mortality well above background (the
    // Table 2 shape: cohorts ranging from ~3x background down to below it).
    let max_rate = pool
        .per_feature
        .iter()
        .flatten()
        .filter(|c| c.n_patients >= 10)
        .map(|c| c.pos_rate[0])
        .fold(0.0f32, f32::max);
    assert!(
        max_rate > background * 1.6,
        "no risk-enriched cohort: max {:.2} vs background {:.2}",
        max_rate,
        background
    );

    // And some large benign cohort must exist below background (C#04 shape).
    let min_rate_large = pool
        .per_feature
        .iter()
        .flatten()
        .filter(|c| c.n_patients >= 50)
        .map(|c| c.pos_rate[0])
        .fold(1.0f32, f32::min);
    assert!(
        min_rate_large < background,
        "no benign common cohort: min {:.2} vs background {:.2}",
        min_rate_large,
        background
    );
}

#[test]
fn states_separate_planted_value_ranges() {
    let (trained, prep, scaler, raw, ds) = trained_setup();
    let ctx = build_context(&trained.model, &trained.params, &prep, &scaler);

    // PCO2 states must span a meaningful raw-value spread (Fig. 10a shape:
    // "different states typically indicate different value ranges"). The
    // acidosis archetype pushes PCO2 several half-ranges above normal, so
    // the state means must cover at least one normal half-width.
    let pco2 = ds.feature_column("PCO2");
    let def = ds.feature_def(pco2);
    let means: Vec<f32> = ctx.summaries[pco2]
        .mean_raw
        .iter()
        .flatten()
        .copied()
        .collect();
    assert!(means.len() >= 3, "PCO2 has too few occupied states");
    let max = means.iter().cloned().fold(f32::MIN, f32::max);
    let min = means.iter().cloned().fold(f32::MAX, f32::min);
    let halfwidth = 0.5 * (def.normal_hi - def.normal_lo);
    assert!(
        max - min > halfwidth,
        "PCO2 state means not value-separated: spread {:.1} (min {min:.1}, max {max:.1})",
        max - min
    );

    // Patients carrying the acidosis archetype should occupy the top PCO2
    // state more often than healthy patients.
    let top_state = ctx.summaries[pco2]
        .mean_raw
        .iter()
        .enumerate()
        .filter_map(|(s, m)| m.map(|v| (s, v)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0 as u8;
    let occupancy = |pred: &dyn Fn(&cohortnet_ehr::PatientRecord) -> bool| -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (p, rec) in raw.patients.iter().enumerate() {
            if !pred(rec) {
                continue;
            }
            for t in 0..ctx.states.t_steps {
                total += 1;
                if ctx.states.state(p, t, pco2) == top_state {
                    hits += 1;
                }
            }
        }
        hits as f64 / total.max(1) as f64
    };
    let acidotic = occupancy(&|r| r.archetypes.contains(&0));
    let healthy = occupancy(&|r| r.archetypes.is_empty());
    assert!(
        acidotic > healthy * 1.2,
        "acidotic occupancy {acidotic:.3} not enriched over healthy {healthy:.3}"
    );
}

#[test]
fn calibration_shifts_risk_toward_outcomes() {
    // Across the training set, cohort calibration should push predicted
    // risk up for patients who died more often than for survivors.
    let (trained, prep, _scaler, raw, _ds) = trained_setup();
    let mut shift_pos = 0.0f64;
    let mut n_pos = 0usize;
    let mut shift_neg = 0.0f64;
    let mut n_neg = 0usize;
    for p in 0..prep.patients.len().min(120) {
        let exp = cohortnet::interpret::explain_patient(&trained.model, &trained.params, &prep, p);
        let delta = (exp.full_prob[0] - exp.base_prob[0]) as f64;
        if raw.patients[p].mortality() != 0 {
            shift_pos += delta;
            n_pos += 1;
        } else {
            shift_neg += delta;
            n_neg += 1;
        }
    }
    let mean_pos = shift_pos / n_pos.max(1) as f64;
    let mean_neg = shift_neg / n_neg.max(1) as f64;
    assert!(
        mean_pos > mean_neg,
        "calibration does not separate outcomes: died {mean_pos:.4} vs survived {mean_neg:.4}"
    );
}
