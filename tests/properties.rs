//! Property-based tests (proptest) on the core invariants of the workspace:
//! autograd correctness, clustering invariants, metric properties, resample
//! semantics and pattern-key injectivity.

use cohortnet::cdm::{decode_key, pattern_key};
use cohortnet_clustering::{inertia_of, kmeans_fit, KMeansConfig};
use cohortnet_ehr::resample::resample;
use cohortnet_metrics::{pr_auc, roc_auc};
use cohortnet_tensor::gradcheck::max_grad_error;
use cohortnet_tensor::matrix::Matrix;
use cohortnet_tensor::nn::{Activation, Mlp};
use cohortnet_tensor::ParamStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reverse-mode gradients agree with central differences for random
    /// MLPs on random inputs.
    #[test]
    fn autograd_matches_finite_differences(
        seed in 0u64..1000,
        rows in 1usize..4,
        hidden in 1usize..6,
    ) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut ps, &mut rng, "m", &[3, hidden, 1], Activation::Tanh, Activation::Sigmoid);
        let data: Vec<f32> = (0..rows * 3).map(|i| ((i * 37 + seed as usize) % 19) as f32 * 0.05 - 0.4).collect();
        let target: Vec<f32> = (0..rows).map(|i| ((i + seed as usize) % 2) as f32).collect();
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let x = t.constant(Matrix::from_vec(rows, 3, data.clone()));
            let y = mlp.forward(t, ps, x);
            t.mse(y, Matrix::from_vec(rows, 1, target.clone()))
        });
        prop_assert!(err < 3e-2, "gradient error {err}");
    }

    /// Reverse-mode gradients agree with central differences through a
    /// two-step GRU chain — the recurrent backbone every model shares.
    #[test]
    fn autograd_matches_finite_differences_gru(seed in 0u64..300) {
        use cohortnet_tensor::nn::GruCell;
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(&mut ps, &mut rng, "g", 2, 3);
        let x1: Vec<f32> = (0..4).map(|i| ((i * 13 + seed as usize) % 11) as f32 * 0.08 - 0.4).collect();
        let x2: Vec<f32> = (0..4).map(|i| ((i * 29 + seed as usize) % 7) as f32 * 0.1 - 0.3).collect();
        let err = max_grad_error(&mut ps, 1e-2, |t, ps| {
            let h0 = cell.init_state(t, 2);
            let a = t.constant(Matrix::from_vec(2, 2, x1.clone()));
            let b = t.constant(Matrix::from_vec(2, 2, x2.clone()));
            let h1 = cell.step(t, ps, a, h0);
            let h2 = cell.step(t, ps, b, h1);
            t.mean_all(h2)
        });
        prop_assert!(err < 3e-2, "gradient error {err}");
    }

    /// Softmax rows always land on the probability simplex.
    #[test]
    fn softmax_rows_simplex(vals in proptest::collection::vec(-50.0f32..50.0, 3..30)) {
        let cols = 3;
        let rows = vals.len() / cols;
        prop_assume!(rows >= 1);
        let m = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let s = m.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Every K-Means point ends at its nearest centroid, and reported
    /// inertia matches a recomputation.
    #[test]
    fn kmeans_invariants(
        seed in 0u64..500,
        n in 4usize..40,
        k in 1usize..6,
    ) {
        let dim = 2;
        let data: Vec<f32> = (0..n * dim)
            .map(|i| (((i as u64 * 2654435761 + seed) % 1000) as f32) / 100.0)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let km = kmeans_fit(&data, dim, KMeansConfig { k, max_iter: 40, tol: 1e-6 }, &mut rng);
        // Assignment optimality.
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let d_assigned: f32 = p.iter().zip(km.centroid(km.assignments[i])).map(|(a, b)| (a - b).powi(2)).sum();
            for c in 0..km.k {
                let d: f32 = p.iter().zip(km.centroid(c)).map(|(a, b)| (a - b).powi(2)).sum();
                prop_assert!(d_assigned <= d + 1e-3);
            }
        }
        // Inertia consistency.
        let recomputed = inertia_of(&data, dim, &km.centroids, &km.assignments);
        prop_assert!((recomputed - km.inertia).abs() < 1e-3 * (1.0 + km.inertia));
    }

    /// AUCs are invariant under strictly monotone score transforms.
    #[test]
    fn auc_monotone_invariance(
        scores in proptest::collection::vec(0.001f32..0.999, 4..40),
        seed in 0u64..100,
    ) {
        let labels: Vec<u8> = scores.iter().enumerate().map(|(i, _)| (i as u64 + seed).is_multiple_of(3) as u8).collect();
        prop_assume!(labels.contains(&1) && labels.contains(&0));
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s).exp() + 1.0).collect();
        prop_assert!((roc_auc(&scores, &labels) - roc_auc(&transformed, &labels)).abs() < 1e-9);
        prop_assert!((pr_auc(&scores, &labels) - pr_auc(&transformed, &labels)).abs() < 1e-9);
    }

    /// AUC-ROC of scores vs inverted scores sum to 1 (no ties).
    #[test]
    fn auc_inversion_symmetry(n in 4usize..30, seed in 0u64..100) {
        let scores: Vec<f32> = (0..n).map(|i| ((i as u64 * 7919 + seed * 13) % 10007) as f32 / 10007.0).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i as u64 * 31 + seed).is_multiple_of(4) as u8).collect();
        prop_assume!(labels.contains(&1) && labels.contains(&0));
        let inverted: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let sum = roc_auc(&scores, &labels) + roc_auc(&inverted, &labels);
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    /// Resampling conserves the value range and never invents values
    /// outside the observed events.
    #[test]
    fn resample_bounded_by_events(
        events in proptest::collection::vec((0.0f32..48.0, -5.0f32..5.0), 1..30),
        bins in 1usize..24,
    ) {
        let out = resample(&events, bins, 48.0).expect("non-empty");
        let lo = events.iter().map(|&(_, v)| v).fold(f32::INFINITY, f32::min);
        let hi = events.iter().map(|&(_, v)| v).fold(f32::NEG_INFINITY, f32::max);
        for &v in &out {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    /// Both AUCs are invariant under any joint permutation of the
    /// (score, label) pairs — ranking metrics must not care about sample
    /// order.
    #[test]
    fn auc_permutation_invariance(
        scores in proptest::collection::vec(0.0f32..1.0, 4..40),
        seed in 0u64..1000,
    ) {
        let labels: Vec<u8> = scores.iter().enumerate().map(|(i, _)| (i as u64 * 17 + seed).is_multiple_of(3) as u8).collect();
        prop_assume!(labels.contains(&1) && labels.contains(&0));
        let mut perm: Vec<usize> = (0..scores.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        let p_scores: Vec<f32> = perm.iter().map(|&i| scores[i]).collect();
        let p_labels: Vec<u8> = perm.iter().map(|&i| labels[i]).collect();
        prop_assert!((roc_auc(&scores, &labels) - roc_auc(&p_scores, &p_labels)).abs() < 1e-12);
        prop_assert!((pr_auc(&scores, &labels) - pr_auc(&p_scores, &p_labels)).abs() < 1e-12);
    }

    /// Both AUCs always land in [0, 1], including degenerate inputs with
    /// heavy ties or single-class slices.
    #[test]
    fn auc_bounded_unit_interval(
        raw in proptest::collection::vec((0u32..8, 0u8..2), 1..50),
    ) {
        // Coarse score grid => plenty of ties.
        let scores: Vec<f32> = raw.iter().map(|&(s, _)| s as f32 / 7.0).collect();
        let labels: Vec<u8> = raw.iter().map(|&(_, l)| l).collect();
        let pr = pr_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&pr), "pr_auc {pr}");
        if labels.contains(&1) && labels.contains(&0) {
            let roc = roc_auc(&scores, &labels);
            prop_assert!((0.0..=1.0).contains(&roc), "roc_auc {roc}");
        }
    }

    /// Pattern keys round-trip for any states under the 4-bit budget.
    #[test]
    fn pattern_key_round_trip(
        states in proptest::collection::vec(0u8..16, 8),
        m0 in 0usize..8, m1 in 0usize..8, m2 in 0usize..8,
    ) {
        let mut mask = vec![m0, m1, m2];
        mask.sort_unstable();
        mask.dedup();
        let key = pattern_key(&states, &mask);
        let decoded = decode_key(key, &mask);
        for (pos, &f) in mask.iter().enumerate() {
            prop_assert_eq!(decoded[pos], (f, states[f]));
        }
    }
}

/// Parallel discovery is bit-identical to sequential discovery: same masks,
/// same cohorts in the same order, same representations, for a fixed seed.
#[test]
fn parallel_discovery_matches_sequential() {
    use cohortnet::config::CohortNetConfig;
    use cohortnet::discover::discover;
    use cohortnet::mflm::Mflm;
    use cohortnet_ehr::{profiles, standardize::Standardizer, synth::generate};
    use cohortnet_models::data::prepare;

    let mut c = profiles::mimic3_like(0.05);
    c.n_patients = 48;
    c.time_steps = 5;
    let mut ds = generate(&c);
    let scaler = Standardizer::fit(&ds);
    scaler.apply(&mut ds);
    let mut cfg = CohortNetConfig::for_dataset(&ds, &scaler);
    cfg.k_states = 4;
    cfg.min_frequency = 3;
    cfg.min_patients = 2;
    cfg.state_fit_samples = 1500;
    let prep = prepare(&ds);

    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(21);
    let mflm = Mflm::new(&mut ps, &mut rng, &cfg);

    cfg.n_threads = 1;
    let serial = discover(&mflm, &ps, &prep, &cfg, &mut StdRng::seed_from_u64(5));
    cfg.n_threads = 4;
    let parallel = discover(&mflm, &ps, &prep, &cfg, &mut StdRng::seed_from_u64(5));

    assert_eq!(serial.pool.masks, parallel.pool.masks);
    assert_eq!(serial.pool.total_cohorts(), parallel.pool.total_cohorts());
    for (a, b) in serial
        .pool
        .per_feature
        .iter()
        .zip(&parallel.pool.per_feature)
    {
        assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(b) {
            assert_eq!(ca.pattern, cb.pattern);
            assert_eq!(ca.frequency, cb.frequency);
            assert_eq!(ca.n_patients, cb.n_patients);
            assert_eq!(
                ca.repr, cb.repr,
                "cohort representations must match bit-for-bit"
            );
        }
    }
}

/// Non-proptest sanity: BCE-with-logits gradient matches sigmoid residual.
#[test]
fn bce_gradient_is_sigmoid_residual() {
    use cohortnet_tensor::Tape;
    let mut t = Tape::new();
    let z = t.constant(Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]));
    let y = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
    let loss = t.bce_with_logits(z, y.clone());
    t.backward(loss);
    let g = t.grad(z).unwrap();
    for i in 0..3 {
        let zi = t.value(z)[(0, i)];
        let p = 1.0 / (1.0 + (-zi).exp());
        let expected = (p - y[(0, i)]) / 3.0;
        assert!((g[(0, i)] - expected).abs() < 1e-6);
    }
}
